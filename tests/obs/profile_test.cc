// Scoped cost accounting: attribution by scope nesting (self vs total),
// exact heap counting through the replacement operator new, folded
// flamegraph export from the span tracer, and the disabled-by-default
// guarantees the hot paths rely on.
#include "obs/profile.hh"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>

namespace repli::obs {
namespace {

/// Restores the global profiler around each test (it is process-global).
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::global().clear();
    Profiler::global().enable();
  }
  void TearDown() override {
    Profiler::global().disable();
    Profiler::global().clear();
  }
};

TEST_F(ProfileTest, CostCenterNamesAreStableAndDistinct) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kCostCenterCount; ++i) {
    names.insert(cost_center_name(static_cast<CostCenter>(i)));
  }
  EXPECT_EQ(names.size(), kCostCenterCount);
  EXPECT_EQ(cost_center_name(CostCenter::WireEncode), "wire.encode");
  EXPECT_EQ(cost_center_name(CostCenter::LockMgr), "db.lock");
  EXPECT_EQ(cost_center_name(CostCenter::Checker), "check");
}

TEST_F(ProfileTest, ScopesCountCallsPerCenter) {
  for (int i = 0; i < 3; ++i) {
    ProfScope scope(CostCenter::WireEncode);
  }
  { ProfScope scope(CostCenter::LockMgr); }
  EXPECT_EQ(Profiler::global().bucket(CostCenter::WireEncode).calls, 3u);
  EXPECT_EQ(Profiler::global().bucket(CostCenter::LockMgr).calls, 1u);
  EXPECT_EQ(Profiler::global().bucket(CostCenter::Checker).calls, 0u);
}

TEST_F(ProfileTest, AllocationCountersSeeHeapActivityExactly) {
  const std::uint64_t count0 = thread_alloc_count();
  const std::uint64_t bytes0 = thread_alloc_bytes();
  {
    auto p = std::make_unique<std::uint64_t[]>(64);  // one 512-byte allocation
    ASSERT_NE(p, nullptr);
  }
  EXPECT_EQ(thread_alloc_count() - count0, 1u);
  EXPECT_EQ(thread_alloc_bytes() - bytes0, 64 * sizeof(std::uint64_t));
}

TEST_F(ProfileTest, NestedScopeAllocationsLandInTheInnerCenter) {
  {
    ProfScope outer(CostCenter::GcsAbcast);
    {
      ProfScope inner(CostCenter::WireEncode);
      auto p = std::make_unique<char[]>(1024);
      ASSERT_NE(p, nullptr);
    }
  }
  const auto& abcast = Profiler::global().bucket(CostCenter::GcsAbcast);
  const auto& encode = Profiler::global().bucket(CostCenter::WireEncode);
  EXPECT_EQ(encode.self_allocs, 1u);
  EXPECT_EQ(encode.self_alloc_bytes, 1024u);
  // The outer scope's *self* cost excludes the nested scope entirely.
  EXPECT_EQ(abcast.self_allocs, 0u);
  EXPECT_EQ(abcast.self_alloc_bytes, 0u);
  // But its total includes the child's time.
  EXPECT_GE(abcast.total_ns, encode.total_ns);
  EXPECT_LE(abcast.self_ns, abcast.total_ns);
}

TEST_F(ProfileTest, SameCenterNestsWithoutDoubleCounting) {
  {
    ProfScope outer(CostCenter::LockMgr);
    {
      ProfScope inner(CostCenter::LockMgr);
      auto p = std::make_unique<char[]>(64);
      ASSERT_NE(p, nullptr);
    }
  }
  const auto& lock = Profiler::global().bucket(CostCenter::LockMgr);
  EXPECT_EQ(lock.calls, 2u);
  // The 64 bytes are attributed once (to the inner frame's self), not twice.
  EXPECT_EQ(lock.self_allocs, 1u);
  EXPECT_EQ(lock.self_alloc_bytes, 64u);
}

TEST_F(ProfileTest, DisabledProfilerAccumulatesNothing) {
  Profiler::global().disable();
  {
    ProfScope scope(CostCenter::Checker);
    auto p = std::make_unique<char[]>(256);
    ASSERT_NE(p, nullptr);
  }
  EXPECT_EQ(Profiler::global().bucket(CostCenter::Checker).calls, 0u);
}

TEST_F(ProfileTest, ClearDropsAccumulatedCost) {
  { ProfScope scope(CostCenter::NetDelivery); }
  ASSERT_EQ(Profiler::global().bucket(CostCenter::NetDelivery).calls, 1u);
  Profiler::global().clear();
  EXPECT_EQ(Profiler::global().bucket(CostCenter::NetDelivery).calls, 0u);
}

// -- folded flamegraph export ------------------------------------------------

TEST(WriteFolded, SelfTimeIsDurationMinusChildren) {
  Tracer tracer;
  // node 0: a 100us root containing a 30us child; the child contains a
  // 10us grandchild on the same node.
  tracer.record(0, "root", 0, 100, "r1");
  tracer.record(0, "child", 10, 40, "r1");
  tracer.record(0, "grand", 20, 30, "r1");
  std::ostringstream os;
  write_folded(tracer, os);
  EXPECT_EQ(os.str(),
            "node0;root 70\n"
            "node0;root;child 20\n"
            "node0;root;child;grand 10\n");
}

TEST(WriteFolded, InstantsAndZeroSelfStacksAreDropped) {
  Tracer tracer;
  tracer.record(1, "covered", 0, 50);
  tracer.record(1, "filler", 0, 50);  // identical interval: parent gets zero self
  tracer.instant(1, "marker", 25);
  std::ostringstream os;
  write_folded(tracer, os);
  // "covered" (earlier id) becomes the parent with zero self-time and is
  // dropped; the instant never appears.
  EXPECT_EQ(os.str(), "node1;covered;filler 50\n");
}

TEST(WriteFolded, NodesGetSeparateStackRoots) {
  Tracer tracer;
  tracer.record(0, "work", 0, 10);
  tracer.record(2, "work", 0, 20);
  std::ostringstream os;
  write_folded(tracer, os);
  EXPECT_EQ(os.str(),
            "node0;work 10\n"
            "node2;work 20\n");
}

}  // namespace
}  // namespace repli::obs
