#include "check/linearizability.hh"

#include <gtest/gtest.h>

#include "util/assert.hh"

namespace repli::check {
namespace {

LinOp get(const std::string& result, sim::Time invoke, sim::Time response) {
  return {LinOp::Kind::Get, "", result, invoke, response};
}
LinOp put(const std::string& value, sim::Time invoke, sim::Time response) {
  return {LinOp::Kind::Put, value, "ok", invoke, response};
}
LinOp add(const std::string& delta, const std::string& result, sim::Time invoke,
          sim::Time response) {
  return {LinOp::Kind::Add, delta, result, invoke, response};
}

TEST(Linearizability, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(check_register_history({}));
}

TEST(Linearizability, SequentialHistoryIsLinearizable) {
  EXPECT_TRUE(check_register_history({put("a", 0, 10), get("a", 20, 30), put("b", 40, 50),
                                      get("b", 60, 70)}));
}

TEST(Linearizability, ReadOfNeverWrittenValueFails) {
  std::string violation;
  EXPECT_FALSE(check_register_history({put("a", 0, 10), get("ghost", 20, 30)}, &violation));
  EXPECT_FALSE(violation.empty());
}

TEST(Linearizability, StaleReadAfterWriteCompletesFails) {
  // put(b) finished at 10; a later get returning the older value "a" that
  // was overwritten must fail (assuming a preceded everything).
  EXPECT_FALSE(check_register_history({put("a", 0, 5), put("b", 6, 10), get("a", 20, 30)}));
}

TEST(Linearizability, ConcurrentWriteAllowsEitherReadValue) {
  // put(b) overlaps the read: the read may see "a" or "b".
  EXPECT_TRUE(check_register_history({put("a", 0, 5), put("b", 10, 30), get("a", 12, 20)}));
  EXPECT_TRUE(check_register_history({put("a", 0, 5), put("b", 10, 30), get("b", 12, 20)}));
}

TEST(Linearizability, RealTimeOrderIsRespected) {
  // Both reads are sequential after both writes; they cannot see different
  // values in the wrong order.
  EXPECT_FALSE(check_register_history(
      {put("a", 0, 5), put("b", 6, 10), get("b", 20, 25), get("a", 30, 35)}));
  EXPECT_TRUE(check_register_history(
      {put("a", 0, 5), put("b", 6, 10), get("b", 20, 25), get("b", 30, 35)}));
}

TEST(Linearizability, AddSemanticsChecked) {
  EXPECT_TRUE(check_register_history({add("5", "5", 0, 10), add("3", "8", 20, 30)}));
  EXPECT_FALSE(check_register_history({add("5", "5", 0, 10), add("3", "3", 20, 30)}))
      << "lost update must be flagged";
}

TEST(Linearizability, ConcurrentAddsMustSerialize) {
  // Two overlapping add(1) ops both returning 1 is the classic lost update.
  EXPECT_FALSE(check_register_history({add("1", "1", 0, 20), add("1", "1", 5, 25)}));
  EXPECT_TRUE(check_register_history({add("1", "1", 0, 20), add("1", "2", 5, 25)}));
}

TEST(Linearizability, MixedPutAddGet) {
  EXPECT_TRUE(check_register_history(
      {put("10", 0, 5), add("5", "15", 10, 20), get("15", 30, 40)}));
}

TEST(Linearizability, TooLargeHistoryRejected) {
  std::vector<LinOp> ops;
  for (int i = 0; i < 30; ++i) ops.push_back(put("v", i * 10, i * 10 + 5));
  EXPECT_THROW(check_register_history(ops), util::InvariantViolation);
}

TEST(Linearizability, HistoryExtractionChecksPerKey) {
  repli::core::History history;
  auto record = [&history](const std::string& id, const std::string& proc,
                           std::vector<std::string> args, std::vector<db::Key> reads,
                           std::vector<db::Key> writes, const std::string& result,
                           sim::Time invoke, sim::Time response) {
    repli::core::OpRecord rec;
    rec.client = 0;
    rec.request_id = id;
    db::Operation op;
    op.proc = proc;
    op.args = std::move(args);
    op.read_set = std::move(reads);
    op.write_set = std::move(writes);
    rec.ops = {op};
    rec.invoke = invoke;
    rec.response = response;
    rec.ok = true;
    rec.result = result;
    const auto idx = history.begin_op(rec);
    history.op(idx).response = response;
    history.op(idx).ok = true;
    history.op(idx).result = result;
  };
  record("r1", "put", {"x", "1"}, {}, {"x"}, "ok", 0, 10);
  record("r2", "get", {"x"}, {"x"}, {}, "1", 20, 30);
  record("r3", "put", {"y", "2"}, {}, {"y"}, "ok", 0, 10);
  const auto report = check_linearizability(history);
  EXPECT_TRUE(report.linearizable);
  EXPECT_EQ(report.keys_checked, 2u);
  EXPECT_EQ(report.ops_checked, 3u);
}

}  // namespace
}  // namespace repli::check
