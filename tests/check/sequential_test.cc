#include "check/sequential.hh"

#include <gtest/gtest.h>

#include "core/cluster.hh"
#include "util/assert.hh"

namespace repli::check {
namespace {

ScOp get(std::int32_t client, const std::string& key, const std::string& result) {
  return {client, key, LinOp::Kind::Get, "", result};
}
ScOp put(std::int32_t client, const std::string& key, const std::string& value) {
  return {client, key, LinOp::Kind::Put, value, "ok"};
}

TEST(SequentialConsistency, EmptyHistoryPasses) {
  EXPECT_TRUE(check_sequential_history({}));
}

TEST(SequentialConsistency, SequentialProgramPasses) {
  EXPECT_TRUE(check_sequential_history(
      {put(0, "x", "1"), get(0, "x", "1"), put(0, "x", "2"), get(0, "x", "2")}));
}

TEST(SequentialConsistency, StaleReadIsAllowed) {
  // Client 1 reads the old value even though (in real time) the write had
  // completed — legal under SC: the read orders before the write.
  EXPECT_TRUE(check_sequential_history({put(0, "x", "new"), get(1, "x", "")}));
}

TEST(SequentialConsistency, ProgramOrderIsEnforced) {
  // Client 0 writes then reads its own key: reading the pre-state after
  // its own write violates program order.
  EXPECT_FALSE(check_sequential_history({put(0, "x", "mine"), get(0, "x", "")}));
}

TEST(SequentialConsistency, DisagreeingObserversFail) {
  // Two writers; two observers that each read both values but in opposite
  // orders. No single total order can satisfy both.
  EXPECT_FALSE(check_sequential_history({
      put(0, "x", "a"),
      put(1, "x", "b"),
      get(2, "x", "a"), get(2, "x", "b"),
      get(3, "x", "b"), get(3, "x", "a"),
  }));
}

TEST(SequentialConsistency, AgreeingObserversPass) {
  EXPECT_TRUE(check_sequential_history({
      put(0, "x", "a"),
      put(1, "x", "b"),
      get(2, "x", "a"), get(2, "x", "b"),
      get(3, "x", "a"), get(3, "x", "b"),
  }));
}

TEST(SequentialConsistency, CrossKeyOrderingMatters) {
  // Classic SC litmus (message passing): c0 writes data then flag; c1 sees
  // the flag but not the data -> violation, because SC is global.
  EXPECT_FALSE(check_sequential_history({
      put(0, "data", "ready"),
      put(0, "flag", "1"),
      get(1, "flag", "1"),
      get(1, "data", ""),
  }));
  EXPECT_TRUE(check_sequential_history({
      put(0, "data", "ready"),
      put(0, "flag", "1"),
      get(1, "flag", "1"),
      get(1, "data", "ready"),
  }));
}

TEST(SequentialConsistency, ReadOfNeverWrittenValueFails) {
  std::string violation;
  EXPECT_FALSE(check_sequential_history({put(0, "x", "a"), get(1, "x", "ghost")}, &violation));
  EXPECT_NE(violation.find("no sequentially consistent order"), std::string::npos);
}

TEST(SequentialConsistency, TooLargeHistoryRejected) {
  std::vector<ScOp> ops;
  for (int i = 0; i < 25; ++i) ops.push_back(put(0, "x", "v"));
  EXPECT_THROW(check_sequential_history(ops), util::InvariantViolation);
}

// The paper's §2.2 point, demonstrated on a real run: a lazy-primary
// history with a stale secondary read is NOT linearizable but IS
// sequentially consistent.
TEST(SequentialConsistency, LazyPrimaryStaleReadIsScButNotLinearizable) {
  core::ClusterConfig cfg;
  cfg.kind = core::TechniqueKind::LazyPrimary;
  cfg.replicas = 3;
  cfg.clients = 2;  // client 1 reads at secondary replica 1
  cfg.seed = 61;
  cfg.lazy_propagation_delay = 300 * sim::kMsec;
  core::Cluster cluster(cfg);

  ASSERT_TRUE(cluster.run_op(0, core::op_put("fresh", "new")).ok);
  const auto stale = cluster.run_op(1, core::op_get("fresh"));
  ASSERT_TRUE(stale.ok);
  ASSERT_EQ(stale.result, "") << "test needs a genuinely stale read";

  const auto lin = check_linearizability(cluster.history());
  EXPECT_FALSE(lin.linearizable)
      << "a stale read after a completed write violates linearizability";
  const auto sc = check_sequential_consistency(cluster.history());
  EXPECT_TRUE(sc.linearizable) << sc.violation
                               << "\n(the stale read orders before the write under SC)";
}

// And an eager counterpart: passive replication's histories satisfy both.
TEST(SequentialConsistency, PassiveHistoriesSatisfyBothCriteria) {
  core::ClusterConfig cfg;
  cfg.kind = core::TechniqueKind::Passive;
  cfg.replicas = 3;
  cfg.clients = 2;
  cfg.seed = 67;
  core::Cluster cluster(cfg);
  ASSERT_TRUE(cluster.run_op(0, core::op_put("k", "v")).ok);
  ASSERT_TRUE(cluster.run_op(1, core::op_get("k")).ok);
  ASSERT_TRUE(cluster.run_op(0, core::op_add("n", 2)).ok);
  ASSERT_TRUE(cluster.run_op(1, core::op_add("n", 3)).ok);

  EXPECT_TRUE(check_linearizability(cluster.history()).linearizable);
  EXPECT_TRUE(check_sequential_consistency(cluster.history()).linearizable);
}

}  // namespace
}  // namespace repli::check
