// Batch checker policy: which checks are sound per technique, and the
// taint rules that keep the register check sound on faulty histories.
#include "check/batch.hh"

#include <gtest/gtest.h>

#include "core/cluster.hh"

namespace repli::check {
namespace {

core::OpRecord rec(db::Operation op, sim::Time invoke, sim::Time response, bool ok,
                   const std::string& result) {
  core::OpRecord r;
  r.client = 0;
  r.ops.push_back(std::move(op));
  r.invoke = invoke;
  r.response = response;
  r.ok = ok;
  r.result = result;
  return r;
}

TEST(ChecksFor, WeakTechniquesGetDigestsOnly) {
  for (const auto kind :
       {core::TechniqueKind::LazyPrimary, core::TechniqueKind::LazyEverywhere}) {
    const auto opts = checks_for(kind);
    EXPECT_TRUE(opts.digests);
    EXPECT_FALSE(opts.serializability);
    EXPECT_FALSE(opts.linearizability);
  }
}

TEST(ChecksFor, DatabaseStyleStrongSkipsTheRegisterCheck) {
  for (const auto kind :
       {core::TechniqueKind::EagerPrimary, core::TechniqueKind::EagerLocking}) {
    const auto opts = checks_for(kind);
    EXPECT_TRUE(opts.digests);
    EXPECT_TRUE(opts.serializability);
    EXPECT_FALSE(opts.linearizability);
  }
}

TEST(ChecksFor, DsStyleStrongGetsAllThree) {
  for (const auto kind : {core::TechniqueKind::Active, core::TechniqueKind::Passive,
                          core::TechniqueKind::SemiActive, core::TechniqueKind::SemiPassive,
                          core::TechniqueKind::EagerAbcast,
                          core::TechniqueKind::Certification}) {
    const auto opts = checks_for(kind);
    EXPECT_TRUE(opts.digests);
    EXPECT_TRUE(opts.serializability);
    EXPECT_TRUE(opts.linearizability);
  }
}

TEST(TaintedKeys, FailedAndIncompleteWritesTaintTheirKeys) {
  core::History h;
  h.begin_op(rec(core::op_put("a", "1"), 0, 10, true, "ok"));     // clean
  h.begin_op(rec(core::op_put("b", "2"), 0, 10, false, ""));      // failed
  h.begin_op(rec(core::op_put("c", "3"), 0, 0, false, ""));       // outstanding
  h.begin_op(rec(core::op_get("d"), 0, 10, false, ""));           // failed read: no writes
  const auto tainted = tainted_keys(h);
  EXPECT_EQ(tainted, (std::set<db::Key>{"b", "c"}));
}

TEST(TaintedKeys, SlowSuccessesTaintWhenThresholdSet) {
  core::History h;
  h.begin_op(rec(core::op_put("fast", "1"), 0, 100, true, "ok"));
  h.begin_op(rec(core::op_put("slow", "1"), 0, 600, true, "ok"));
  EXPECT_TRUE(tainted_keys(h).empty()) << "threshold off: success is success";
  EXPECT_EQ(tainted_keys(h, 500), (std::set<db::Key>{"slow"}));
}

TEST(RunChecks, DigestDisagreementFailsFirst) {
  core::History h;
  BatchOptions opts;
  const auto verdict = run_checks(h, {7, 7, 8}, opts);
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.failed_check, "digest");
  EXPECT_FALSE(verdict.digests_agree);
}

TEST(RunChecks, CleanHistoryPasses) {
  core::History h;
  h.begin_op(rec(core::op_put("k", "a"), 0, 10, true, "ok"));
  h.begin_op(rec(core::op_get("k"), 20, 30, true, "a"));
  const auto verdict = run_checks(h, {7, 7, 7}, BatchOptions{});
  EXPECT_TRUE(verdict.ok) << verdict.violation;
  EXPECT_EQ(verdict.linearizability.keys_checked, 1u);
}

TEST(RunChecks, RegisterViolationIsCaught) {
  core::History h;
  h.begin_op(rec(core::op_put("k", "a"), 0, 10, true, "ok"));
  h.begin_op(rec(core::op_get("k"), 20, 30, true, "ghost"));
  const auto verdict = run_checks(h, {7, 7, 7}, BatchOptions{});
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.failed_check, "linearizability");
}

TEST(RunChecks, TaintedKeySkipsTheRegisterCheck) {
  core::History h;
  h.begin_op(rec(core::op_put("k", "a"), 0, 10, true, "ok"));
  h.begin_op(rec(core::op_get("k"), 20, 30, true, "ghost"));
  // A failed write to the same key: outcome unknown, the "ghost" read can
  // no longer be judged — the key is skipped, not failed.
  h.begin_op(rec(core::op_put("k", "ghost"), 15, 18, false, ""));
  const auto verdict = run_checks(h, {7, 7, 7}, BatchOptions{});
  EXPECT_TRUE(verdict.ok) << verdict.violation;
  EXPECT_EQ(verdict.tainted_keys, 1u);
  EXPECT_EQ(verdict.linearizability.keys_skipped, 1u);
  EXPECT_EQ(verdict.linearizability.keys_checked, 0u);
}

TEST(RunChecks, OversizedKeysAreSkippedNotFailed) {
  core::History h;
  for (int i = 0; i < 6; ++i) {
    h.begin_op(rec(core::op_put("k", "v" + std::to_string(i)), i * 10,
                   i * 10 + 5, true, "ok"));
  }
  BatchOptions opts;
  opts.max_ops_per_key = 4;
  const auto verdict = run_checks(h, {7}, opts);
  EXPECT_TRUE(verdict.ok);
  EXPECT_EQ(verdict.linearizability.keys_skipped, 1u);
}

}  // namespace
}  // namespace repli::check
