#include "check/serializability.hh"

#include <gtest/gtest.h>

namespace repli::check {
namespace {

using repli::core::CommitRecord;
using repli::core::History;

CommitRecord commit(sim::NodeId replica, const std::string& txn, std::uint64_t seq,
                    std::map<db::Key, db::Value> writes,
                    std::map<db::Key, std::uint64_t> reads = {}) {
  CommitRecord rec;
  rec.replica = replica;
  rec.txn = txn;
  rec.commit_seq = seq;
  rec.writes = std::move(writes);
  rec.read_versions = std::move(reads);
  return rec;
}

TEST(Serializability, EmptyHistoryIsSerializable) {
  History history;
  const auto report = check_one_copy_serializability(history);
  EXPECT_TRUE(report.serializable);
  EXPECT_EQ(report.transactions, 0u);
}

TEST(Serializability, ConsistentReplicasPass) {
  History history;
  for (const sim::NodeId replica : {0, 1, 2}) {
    history.commit(commit(replica, "t1", 1, {{"k", "a"}}));
    history.commit(commit(replica, "t2", 2, {{"k", "b"}}));
  }
  const auto report = check_one_copy_serializability(history);
  EXPECT_TRUE(report.serializable);
  EXPECT_TRUE(report.write_orders_agree);
  EXPECT_EQ(report.transactions, 2u);
  EXPECT_GT(report.edges, 0u);
}

TEST(Serializability, CrashedReplicaPrefixPasses) {
  History history;
  history.commit(commit(0, "t1", 1, {{"k", "a"}}));
  history.commit(commit(0, "t2", 2, {{"k", "b"}}));
  history.commit(commit(1, "t1", 1, {{"k", "a"}}));  // crashed before t2
  const auto report = check_one_copy_serializability(history);
  EXPECT_TRUE(report.serializable) << report.violation;
}

TEST(Serializability, WriteOrderDisagreementFails) {
  History history;
  history.commit(commit(0, "t1", 1, {{"k", "a"}}));
  history.commit(commit(0, "t2", 2, {{"k", "b"}}));
  history.commit(commit(1, "t2", 1, {{"k", "b"}}));
  history.commit(commit(1, "t1", 2, {{"k", "a"}}));
  const auto report = check_one_copy_serializability(history);
  EXPECT_FALSE(report.serializable);
  EXPECT_FALSE(report.write_orders_agree);
  EXPECT_NE(report.violation.find("k"), std::string::npos);
}

TEST(Serializability, ReadWriteCycleFails) {
  // Classic write skew shape: t1 reads x@1 writes y; t2 reads y@1 writes x.
  // Both read the pre-state of what the other overwrote: rw edges both ways.
  History history;
  history.commit(commit(0, "t0", 1, {{"x", "0"}, {"y", "0"}}));
  history.commit(commit(0, "t1", 2, {{"y", "1"}}, {{"x", 1}}));
  history.commit(commit(0, "t2", 3, {{"x", "1"}}, {{"y", 1}}));
  const auto report = check_one_copy_serializability(history);
  EXPECT_FALSE(report.serializable) << "write skew should produce a cycle";
}

TEST(Serializability, ReadFromOrderPasses) {
  History history;
  history.commit(commit(0, "t1", 1, {{"x", "1"}}));
  history.commit(commit(0, "t2", 2, {{"y", "1"}}, {{"x", 1}}));  // t2 read t1's write
  const auto report = check_one_copy_serializability(history);
  EXPECT_TRUE(report.serializable) << report.violation;
}

TEST(Serializability, WriterSequenceExtraction) {
  History history;
  history.commit(commit(2, "t1", 1, {{"k", "a"}, {"other", "x"}}));
  history.commit(commit(2, "t2", 2, {{"k", "b"}}));
  history.commit(commit(1, "t9", 1, {{"k", "z"}}));
  EXPECT_EQ(writer_sequence(history, 2, "k"), (std::vector<std::string>{"t1", "t2"}));
  EXPECT_EQ(writer_sequence(history, 2, "other"), (std::vector<std::string>{"t1"}));
  EXPECT_EQ(writer_sequence(history, 1, "k"), (std::vector<std::string>{"t9"}));
  EXPECT_TRUE(writer_sequence(history, 0, "k").empty());
}

}  // namespace
}  // namespace repli::check
