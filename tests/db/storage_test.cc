#include "db/storage.hh"

#include <gtest/gtest.h>

#include "util/assert.hh"

namespace repli::db {
namespace {

TEST(Storage, GetMissingIsNullopt) {
  Storage s;
  EXPECT_FALSE(s.get("nope").has_value());
  EXPECT_EQ(s.size(), 0u);
}

TEST(Storage, PutThenGet) {
  Storage s;
  s.put("k", "v", 1, "t1");
  const auto rec = s.get("k");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->value, "v");
  EXPECT_EQ(rec->version, 1u);
  EXPECT_EQ(rec->writer_txn, "t1");
}

TEST(Storage, OverwriteAdvancesVersion) {
  Storage s;
  s.put("k", "v1", 1, "t1");
  s.put("k", "v2", 5, "t2");
  EXPECT_EQ(s.get("k")->value, "v2");
  EXPECT_EQ(s.get("k")->version, 5u);
}

TEST(Storage, VersionRegressionRejected) {
  Storage s;
  s.put("k", "v1", 5, "t1");
  EXPECT_THROW(s.put("k", "v0", 3, "t0"), util::InvariantViolation);
}

TEST(Storage, ForcePutAllowsRegression) {
  Storage s;
  s.put("k", "v1", 5, "t1");
  s.force_put("k", "undone", 3, "reconciler");
  EXPECT_EQ(s.get("k")->value, "undone");
  EXPECT_EQ(s.get("k")->version, 3u);
}

TEST(Storage, DigestIgnoresVersions) {
  Storage a, b;
  a.put("x", "1", 1, "ta");
  a.put("y", "2", 2, "ta");
  b.put("y", "2", 7, "tb");  // different versions/writers, same values
  b.put("x", "1", 9, "tb");
  EXPECT_EQ(a.value_digest(), b.value_digest());
}

TEST(Storage, DigestDetectsValueDivergence) {
  Storage a, b;
  a.put("x", "1", 1, "t");
  b.put("x", "2", 1, "t");
  EXPECT_NE(a.value_digest(), b.value_digest());
}

TEST(Storage, DigestDetectsKeySetDivergence) {
  Storage a, b;
  a.put("x", "1", 1, "t");
  EXPECT_NE(a.value_digest(), b.value_digest());
}

TEST(Storage, CommitSeqMonotone) {
  Storage s;
  EXPECT_EQ(s.next_commit_seq(), 1u);
  EXPECT_EQ(s.next_commit_seq(), 2u);
  s.observe_commit_seq(10);
  EXPECT_EQ(s.next_commit_seq(), 11u);
  s.observe_commit_seq(5);  // no regression
  EXPECT_EQ(s.next_commit_seq(), 12u);
}

}  // namespace
}  // namespace repli::db
