#include "db/lock.hh"

#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace repli::db {
namespace {

// Minimal host process: the lock manager only needs its timers.
class Host : public sim::Process {
 public:
  Host(sim::NodeId id, sim::Simulator& sim) : Process(id, sim, "lock-host") {}
  void on_message(sim::NodeId, wire::MessagePtr) override {}
};

struct Fixture {
  Fixture() : sim(1), host(sim.spawn<Host>()), lm(host) {}
  sim::Simulator sim;
  Host& host;
  LockManager lm;
};

TEST(LockManager, SharedLocksCoexist) {
  Fixture f;
  int grants = 0;
  f.lm.acquire("t1", 1, "k", LockMode::Shared, [&] { ++grants; }, [] { FAIL(); });
  f.lm.acquire("t2", 2, "k", LockMode::Shared, [&] { ++grants; }, [] { FAIL(); });
  EXPECT_EQ(grants, 2);
  EXPECT_TRUE(f.lm.holds("t1", "k", LockMode::Shared));
  EXPECT_TRUE(f.lm.holds("t2", "k", LockMode::Shared));
}

TEST(LockManager, ExclusiveBlocksOthers) {
  Fixture f;
  bool t2_granted = false;
  f.lm.acquire("t1", 1, "k", LockMode::Exclusive, [] {}, [] { FAIL(); });
  f.lm.acquire("t2", 2, "k", LockMode::Shared, [&] { t2_granted = true; }, [] { FAIL(); });
  EXPECT_FALSE(t2_granted);
  EXPECT_EQ(f.lm.waiting_count(), 1u);
  f.lm.release_all("t1");
  EXPECT_TRUE(t2_granted);
  EXPECT_TRUE(f.lm.holds("t2", "k", LockMode::Shared));
}

TEST(LockManager, SharedBlocksExclusive) {
  Fixture f;
  bool x_granted = false;
  f.lm.acquire("t1", 1, "k", LockMode::Shared, [] {}, [] { FAIL(); });
  f.lm.acquire("t2", 2, "k", LockMode::Exclusive, [&] { x_granted = true; }, [] { FAIL(); });
  EXPECT_FALSE(x_granted);
  f.lm.release_all("t1");
  EXPECT_TRUE(x_granted);
}

TEST(LockManager, ReentrantAcquireIsImmediate) {
  Fixture f;
  int grants = 0;
  f.lm.acquire("t1", 1, "k", LockMode::Exclusive, [&] { ++grants; }, [] { FAIL(); });
  f.lm.acquire("t1", 1, "k", LockMode::Shared, [&] { ++grants; }, [] { FAIL(); });
  f.lm.acquire("t1", 1, "k", LockMode::Exclusive, [&] { ++grants; }, [] { FAIL(); });
  EXPECT_EQ(grants, 3);
}

TEST(LockManager, UpgradeWhenSoleHolder) {
  Fixture f;
  bool upgraded = false;
  f.lm.acquire("t1", 1, "k", LockMode::Shared, [] {}, [] { FAIL(); });
  f.lm.acquire("t1", 1, "k", LockMode::Exclusive, [&] { upgraded = true; }, [] { FAIL(); });
  EXPECT_TRUE(upgraded);
  EXPECT_TRUE(f.lm.holds("t1", "k", LockMode::Exclusive));
}

TEST(LockManager, UpgradeWaitsForOtherReaders) {
  Fixture f;
  bool upgraded = false;
  f.lm.acquire("t1", 1, "k", LockMode::Shared, [] {}, [] { FAIL(); });
  f.lm.acquire("t2", 2, "k", LockMode::Shared, [] {}, [] { FAIL(); });
  f.lm.acquire("t1", 1, "k", LockMode::Exclusive, [&] { upgraded = true; }, [] { FAIL(); });
  EXPECT_FALSE(upgraded);
  f.lm.release_all("t2");
  EXPECT_TRUE(upgraded);
}

TEST(LockManager, FifoFairnessNoStarvation) {
  Fixture f;
  std::vector<std::string> grant_order;
  f.lm.acquire("t1", 1, "k", LockMode::Exclusive, [] {}, [] { FAIL(); });
  f.lm.acquire("t2", 2, "k", LockMode::Exclusive, [&] { grant_order.push_back("t2"); }, [] { FAIL(); });
  f.lm.acquire("t3", 3, "k", LockMode::Shared, [&] { grant_order.push_back("t3"); }, [] { FAIL(); });
  // A late shared request must not jump over the queued exclusive one.
  f.lm.release_all("t1");
  ASSERT_EQ(grant_order.size(), 1u);
  EXPECT_EQ(grant_order[0], "t2");
  f.lm.release_all("t2");
  EXPECT_EQ(grant_order, (std::vector<std::string>{"t2", "t3"}));
}

TEST(LockManager, DeadlockDetectedYoungestAborts) {
  Fixture f;
  bool t2_aborted = false;
  bool t1_granted_b = false;
  f.lm.acquire("t1", 1, "a", LockMode::Exclusive, [] {}, [] { FAIL(); });
  f.lm.acquire("t2", 2, "b", LockMode::Exclusive, [] {}, [] { FAIL(); });
  // t1 waits for b (held by t2); no cycle yet.
  f.lm.acquire("t1", 1, "b", LockMode::Exclusive, [&] { t1_granted_b = true; },
               [] { FAIL() << "older txn was chosen as victim"; });
  // t2 waits for a (held by t1): cycle t1 -> t2 -> t1. t2 (younger) dies.
  f.lm.acquire("t2", 2, "a", LockMode::Exclusive, [] { FAIL(); }, [&] { t2_aborted = true; });
  EXPECT_TRUE(t2_aborted);
  EXPECT_EQ(f.lm.deadlock_aborts(), 1);
  // The abort callback is expected to release; simulate that.
  f.lm.release_all("t2");
  EXPECT_TRUE(t1_granted_b);
}

TEST(LockManager, ThreeWayDeadlockResolved) {
  Fixture f;
  int aborts = 0;
  auto on_abort = [&] { ++aborts; };
  f.lm.acquire("t1", 1, "a", LockMode::Exclusive, [] {}, [] {});
  f.lm.acquire("t2", 2, "b", LockMode::Exclusive, [] {}, [] {});
  f.lm.acquire("t3", 3, "c", LockMode::Exclusive, [] {}, [] {});
  f.lm.acquire("t1", 1, "b", LockMode::Exclusive, [] {}, on_abort);
  f.lm.acquire("t2", 2, "c", LockMode::Exclusive, [] {}, on_abort);
  f.lm.acquire("t3", 3, "a", LockMode::Exclusive, [] {}, on_abort);  // closes the cycle
  EXPECT_EQ(aborts, 1);
  EXPECT_EQ(f.lm.deadlock_aborts(), 1);
}

TEST(LockManager, WaitTimeoutBackstopFires) {
  sim::Simulator sim(1);
  auto& host = sim.spawn<Host>();
  LockConfig cfg;
  cfg.wait_timeout = 50 * sim::kMsec;
  LockManager lm(host, cfg);
  bool aborted = false;
  lm.acquire("t1", 1, "k", LockMode::Exclusive, [] {}, [] { FAIL(); });
  lm.acquire("t2", 2, "k", LockMode::Exclusive, [] { FAIL(); }, [&] { aborted = true; });
  sim.run_until(200 * sim::kMsec);
  EXPECT_TRUE(aborted);
  EXPECT_EQ(lm.waiting_count(), 0u);
}

TEST(LockManager, ReleaseAllCancelsPendingRequest) {
  Fixture f;
  f.lm.acquire("t1", 1, "k", LockMode::Exclusive, [] {}, [] { FAIL(); });
  f.lm.acquire("t2", 2, "k", LockMode::Exclusive, [] { FAIL(); }, [] { FAIL(); });
  f.lm.release_all("t2");  // withdraw while waiting: neither callback fires
  EXPECT_EQ(f.lm.waiting_count(), 0u);
  f.lm.release_all("t1");
  EXPECT_FALSE(f.lm.holds("t1", "k", LockMode::Shared));
}

TEST(LockManager, IndependentKeysDoNotInteract) {
  Fixture f;
  int grants = 0;
  f.lm.acquire("t1", 1, "a", LockMode::Exclusive, [&] { ++grants; }, [] { FAIL(); });
  f.lm.acquire("t2", 2, "b", LockMode::Exclusive, [&] { ++grants; }, [] { FAIL(); });
  EXPECT_EQ(grants, 2);
}

TEST(LockManager, QueuedRequestsGrantInBatchWhenCompatible) {
  Fixture f;
  int shared_grants = 0;
  f.lm.acquire("t1", 1, "k", LockMode::Exclusive, [] {}, [] { FAIL(); });
  for (int i = 2; i <= 5; ++i) {
    f.lm.acquire("t" + std::to_string(i), i, "k", LockMode::Shared,
                 [&] { ++shared_grants; }, [] { FAIL(); });
  }
  EXPECT_EQ(shared_grants, 0);
  f.lm.release_all("t1");
  EXPECT_EQ(shared_grants, 4);  // all compatible readers granted together
}

TEST(LockManager, WaitDieYoungerRequesterDiesImmediately) {
  sim::Simulator sim(1);
  auto& host = sim.spawn<Host>();
  LockConfig cfg;
  cfg.wait_die = true;
  LockManager lm(host, cfg);
  bool died = false;
  lm.acquire("old", 1, "k", LockMode::Exclusive, [] {}, [] { FAIL(); });
  lm.acquire("young", 2, "k", LockMode::Exclusive, [] { FAIL(); }, [&] { died = true; });
  EXPECT_TRUE(died);
  EXPECT_EQ(lm.deadlock_aborts(), 1);
  EXPECT_EQ(lm.waiting_count(), 0u);
}

TEST(LockManager, WaitDieOlderRequesterWaits) {
  sim::Simulator sim(1);
  auto& host = sim.spawn<Host>();
  LockConfig cfg;
  cfg.wait_die = true;
  LockManager lm(host, cfg);
  bool granted = false;
  lm.acquire("young", 2, "k", LockMode::Exclusive, [] {}, [] { FAIL(); });
  lm.acquire("old", 1, "k", LockMode::Exclusive, [&] { granted = true; }, [] { FAIL(); });
  EXPECT_FALSE(granted);
  EXPECT_EQ(lm.waiting_count(), 1u);
  lm.release_all("young");
  EXPECT_TRUE(granted);
}

TEST(LockManager, WaitDieSharedReadersUnaffected) {
  sim::Simulator sim(1);
  auto& host = sim.spawn<Host>();
  LockConfig cfg;
  cfg.wait_die = true;
  LockManager lm(host, cfg);
  int grants = 0;
  lm.acquire("old", 1, "k", LockMode::Shared, [&] { ++grants; }, [] { FAIL(); });
  lm.acquire("young", 2, "k", LockMode::Shared, [&] { ++grants; }, [] { FAIL(); });
  EXPECT_EQ(grants, 2) << "compatible modes never trigger wait-die";
}

TEST(LockManager, WaitDiePreventsCrossKeyDeadlock) {
  sim::Simulator sim(1);
  auto& host = sim.spawn<Host>();
  LockConfig cfg;
  cfg.wait_die = true;
  LockManager lm(host, cfg);
  bool young_died = false;
  lm.acquire("t1", 1, "a", LockMode::Exclusive, [] {}, [] { FAIL(); });
  lm.acquire("t2", 2, "b", LockMode::Exclusive, [] {}, [] { FAIL(); });
  lm.acquire("t1", 1, "b", LockMode::Exclusive, [] {}, [] { FAIL(); });  // old waits
  lm.acquire("t2", 2, "a", LockMode::Exclusive, [] { FAIL(); }, [&] { young_died = true; });
  EXPECT_TRUE(young_died) << "the would-be cycle edge dies instead of waiting";
  // After t2 releases, the old transaction gets b.
  lm.release_all("t2");
  EXPECT_TRUE(lm.holds("t1", "b", LockMode::Exclusive));
}

TEST(LockManager, WaitDiePriorityIsSticky) {
  // The priority recorded at first contact governs later interactions even
  // if a different priority is passed (retried transactions keep their age).
  sim::Simulator sim(1);
  auto& host = sim.spawn<Host>();
  LockConfig cfg;
  cfg.wait_die = true;
  LockManager lm(host, cfg);
  lm.acquire("t1", 5, "k", LockMode::Exclusive, [] {}, [] { FAIL(); });
  bool died = false;
  // t2 claims priority 1 now, but k's holder recorded 5; 1 < 5 so t2 waits.
  lm.acquire("t2", 1, "k", LockMode::Exclusive, [] {}, [&] { died = true; });
  EXPECT_FALSE(died);
  EXPECT_EQ(lm.waiting_count(), 1u);
}

}  // namespace
}  // namespace repli::db
