#include "db/tpc.hh"

#include <gtest/gtest.h>

#include <map>

#include "gcs/component.hh"
#include "sim/simulator.hh"

namespace repli::db {
namespace {

class TpcNode : public gcs::ComponentHost {
 public:
  TpcNode(sim::NodeId id, sim::Simulator& sim, TpcConfig cfg = {})
      : ComponentHost(id, sim, "tpc-node"), tpc(*this, 1, cfg) {
    add_component(tpc);
    tpc.set_vote_handler([this](const std::string& txn, const std::string& payload) {
      payloads[txn] = payload;
      return vote_yes;
    });
    tpc.set_outcome_handler([this](const std::string& txn, bool commit) {
      outcomes[txn] = commit;
    });
  }

  TwoPhaseCommit tpc;
  bool vote_yes = true;
  std::map<std::string, std::string> payloads;
  std::map<std::string, bool> outcomes;
};

TEST(TwoPhaseCommit, UnanimousYesCommitsEverywhere) {
  sim::Simulator sim(1);
  std::vector<TpcNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<TpcNode>());
  bool coordinator_done = false;
  nodes[0]->tpc.coordinate("t1", {0, 1, 2}, "writeset-bytes",
                           [&](const std::string&, bool commit) {
                             coordinator_done = true;
                             EXPECT_TRUE(commit);
                           });
  sim.run_until(2 * sim::kSec);
  EXPECT_TRUE(coordinator_done);
  for (auto* n : nodes) {
    ASSERT_TRUE(n->outcomes.contains("t1")) << "node " << n->id();
    EXPECT_TRUE(n->outcomes.at("t1"));
    EXPECT_EQ(n->payloads.at("t1"), "writeset-bytes");
    EXPECT_TRUE(n->tpc.in_doubt().empty());
  }
}

TEST(TwoPhaseCommit, SingleNoVoteAbortsGlobally) {
  sim::Simulator sim(2);
  std::vector<TpcNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<TpcNode>());
  nodes[2]->vote_yes = false;
  bool committed = true;
  nodes[0]->tpc.coordinate("t1", {0, 1, 2}, "",
                           [&](const std::string&, bool commit) { committed = commit; });
  sim.run_until(2 * sim::kSec);
  EXPECT_FALSE(committed);
  for (auto* n : nodes) {
    ASSERT_TRUE(n->outcomes.contains("t1"));
    EXPECT_FALSE(n->outcomes.at("t1"));
    EXPECT_TRUE(n->tpc.in_doubt().empty());
  }
}

TEST(TwoPhaseCommit, ParticipantCrashBeforeVotingAborts) {
  sim::Simulator sim(3);
  std::vector<TpcNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<TpcNode>());
  sim.crash(2);
  bool committed = true;
  nodes[0]->tpc.coordinate("t1", {0, 1, 2}, "",
                           [&](const std::string&, bool commit) { committed = commit; });
  sim.run_until(2 * sim::kSec);
  EXPECT_FALSE(committed) << "commit despite a silent participant";
  ASSERT_TRUE(nodes[1]->outcomes.contains("t1"));
  EXPECT_FALSE(nodes[1]->outcomes.at("t1"));
}

TEST(TwoPhaseCommit, CoordinatorCrashAfterPrepareBlocksParticipants) {
  // The blocking behaviour the paper calls out: yes-voters stay in doubt.
  sim::Simulator sim(4);
  std::vector<TpcNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<TpcNode>());
  nodes[0]->tpc.coordinate("t1", {0, 1, 2}, "", [](const std::string&, bool) {});
  // Crash the coordinator just after prepares go out, before decisions.
  sim.schedule_at(200, [&] { sim.crash(0); });
  sim.run_until(5 * sim::kSec);
  for (auto* n : {nodes[1], nodes[2]}) {
    EXPECT_FALSE(n->outcomes.contains("t1")) << "node " << n->id() << " resolved without coordinator";
    EXPECT_TRUE(n->tpc.in_doubt().contains("t1")) << "node " << n->id() << " not blocked";
  }
}

TEST(TwoPhaseCommit, CoordinatorAloneCommitsLocally) {
  sim::Simulator sim(5);
  auto& node = sim.spawn<TpcNode>();
  bool committed = false;
  node.tpc.coordinate("t1", {0}, "solo", [&](const std::string&, bool c) { committed = c; });
  sim.run_until(1 * sim::kSec);
  EXPECT_TRUE(committed);
  EXPECT_TRUE(node.outcomes.at("t1"));
}

TEST(TwoPhaseCommit, ConcurrentTransactionsResolveIndependently) {
  sim::Simulator sim(6);
  std::vector<TpcNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<TpcNode>());
  std::map<std::string, bool> results;
  nodes[0]->tpc.coordinate("ta", {0, 1, 2}, "",
                           [&](const std::string& t, bool c) { results[t] = c; });
  nodes[1]->tpc.coordinate("tb", {0, 1, 2}, "",
                           [&](const std::string& t, bool c) { results[t] = c; });
  sim.run_until(2 * sim::kSec);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results.at("ta"));
  EXPECT_TRUE(results.at("tb"));
}

TEST(TwoPhaseCommit, LossyNetworkStillResolves) {
  sim::NetworkConfig net;
  net.drop_probability = 0.3;
  sim::Simulator sim(7, net);
  std::vector<TpcNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<TpcNode>());
  bool committed = false;
  nodes[0]->tpc.coordinate("t1", {0, 1, 2}, "",
                           [&](const std::string&, bool c) { committed = c; });
  sim.run_until(10 * sim::kSec);
  EXPECT_TRUE(committed) << "ARQ should absorb loss";
  for (auto* n : nodes) EXPECT_TRUE(n->outcomes.at("t1"));
}

}  // namespace
}  // namespace repli::db
