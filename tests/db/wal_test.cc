#include "db/wal.hh"

#include <gtest/gtest.h>

namespace repli::db {
namespace {

TEST(Wal, LsnsAreMonotone) {
  Wal wal;
  const auto a = wal.begin("t1");
  const auto b = wal.write("t1", "k", "v");
  const auto c = wal.commit("t1");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(wal.last_lsn(), c);
}

TEST(Wal, TailReturnsRecordsAfterLsn) {
  Wal wal;
  wal.begin("t1");
  const auto mid = wal.write("t1", "k", "v");
  wal.commit("t1");
  const auto tail = wal.tail(mid);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].type, WalType::Commit);
  EXPECT_EQ(wal.tail(0).size(), 3u);
  EXPECT_TRUE(wal.tail(wal.last_lsn()).empty());
}

TEST(Wal, RedoAppliesCommittedTransactions) {
  Wal wal;
  wal.begin("t1");
  wal.write("t1", "a", "1");
  wal.write("t1", "b", "2");
  wal.commit("t1");
  Storage s;
  EXPECT_EQ(Wal::redo(wal.records(), s), 1u);
  EXPECT_EQ(s.get("a")->value, "1");
  EXPECT_EQ(s.get("b")->value, "2");
}

TEST(Wal, RedoSkipsAbortedTransactions) {
  Wal wal;
  wal.begin("t1");
  wal.write("t1", "a", "1");
  wal.abort("t1");
  wal.begin("t2");
  wal.write("t2", "b", "2");
  wal.commit("t2");
  Storage s;
  EXPECT_EQ(Wal::redo(wal.records(), s), 1u);
  EXPECT_FALSE(s.get("a").has_value());
  EXPECT_EQ(s.get("b")->value, "2");
}

TEST(Wal, RedoSkipsUnfinishedTransactions) {
  Wal wal;
  wal.begin("t1");
  wal.write("t1", "a", "1");  // no commit: in-flight at crash
  Storage s;
  EXPECT_EQ(Wal::redo(wal.records(), s), 0u);
  EXPECT_EQ(s.size(), 0u);
}

TEST(Wal, RedoPreservesCommitOrder) {
  Wal wal;
  wal.begin("t1");
  wal.write("t1", "k", "first");
  wal.commit("t1");
  wal.begin("t2");
  wal.write("t2", "k", "second");
  wal.commit("t2");
  Storage s;
  Wal::redo(wal.records(), s);
  EXPECT_EQ(s.get("k")->value, "second");
}

TEST(Wal, RedoOfInterleavedTransactions) {
  Wal wal;
  wal.begin("t1");
  wal.begin("t2");
  wal.write("t1", "a", "1");
  wal.write("t2", "b", "2");
  wal.commit("t2");
  wal.write("t1", "c", "3");
  wal.commit("t1");
  Storage s;
  EXPECT_EQ(Wal::redo(wal.records(), s), 2u);
  EXPECT_EQ(s.get("a")->value, "1");
  EXPECT_EQ(s.get("b")->value, "2");
  EXPECT_EQ(s.get("c")->value, "3");
  // t2 committed before t1: its versions are older.
  EXPECT_LT(s.get("b")->version, s.get("a")->version);
}

}  // namespace
}  // namespace repli::db
