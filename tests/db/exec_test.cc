#include "db/exec.hh"

#include <gtest/gtest.h>

#include "util/assert.hh"

namespace repli::db {
namespace {

Operation op_put(const Key& k, const Value& v) {
  Operation op;
  op.proc = "put";
  op.args = {k, v};
  op.write_set = {k};
  return op;
}

Operation op_get(const Key& k) {
  Operation op;
  op.proc = "get";
  op.args = {k};
  op.read_set = {k};
  return op;
}

Operation op_add(const Key& k, std::int64_t delta) {
  Operation op;
  op.proc = "add";
  op.args = {k, std::to_string(delta)};
  op.read_set = {k};
  op.write_set = {k};
  return op;
}

Operation op_transfer(const Key& from, const Key& to, std::int64_t amt) {
  Operation op;
  op.proc = "transfer";
  op.args = {from, to, std::to_string(amt)};
  op.read_set = {from, to};
  op.write_set = {from, to};
  return op;
}

struct Fixture {
  Fixture() : registry(ProcRegistry::with_builtins()) {}
  ProcRegistry registry;
  Storage storage;
  SeededChoices choices{42};
};

TEST(Exec, PutThenGetRoundTrip) {
  Fixture f;
  auto r1 = execute_and_commit(f.registry, op_put("k", "hello"), f.storage, f.choices, "t1");
  EXPECT_EQ(r1.result, "ok");
  EXPECT_EQ(r1.commit_seq, 1u);
  auto r2 = execute_and_commit(f.registry, op_get("k"), f.storage, f.choices, "t2");
  EXPECT_EQ(r2.result, "hello");
  EXPECT_EQ(r2.commit_seq, 0u) << "read-only op must not consume a commit seq";
}

TEST(Exec, GetMissingKeyIsEmptyWithVersionZero) {
  Fixture f;
  auto r = execute_and_commit(f.registry, op_get("ghost"), f.storage, f.choices, "t1");
  EXPECT_EQ(r.result, "");
  ASSERT_TRUE(r.read_versions.contains("ghost"));
  EXPECT_EQ(r.read_versions.at("ghost"), 0u);
}

TEST(Exec, AddAccumulates) {
  Fixture f;
  execute_and_commit(f.registry, op_add("n", 5), f.storage, f.choices, "t1");
  auto r = execute_and_commit(f.registry, op_add("n", 7), f.storage, f.choices, "t2");
  EXPECT_EQ(r.result, "12");
  EXPECT_EQ(f.storage.get("n")->value, "12");
}

TEST(Exec, TransferMovesFunds) {
  Fixture f;
  execute_and_commit(f.registry, op_put("alice", "100"), f.storage, f.choices, "t0");
  execute_and_commit(f.registry, op_put("bob", "10"), f.storage, f.choices, "t1");
  auto r = execute_and_commit(f.registry, op_transfer("alice", "bob", 30), f.storage, f.choices, "t2");
  EXPECT_EQ(r.result, "ok");
  EXPECT_EQ(f.storage.get("alice")->value, "70");
  EXPECT_EQ(f.storage.get("bob")->value, "40");
}

TEST(Exec, SelfTransferIsANoop) {
  Fixture f;
  execute_and_commit(f.registry, op_put("alice", "100"), f.storage, f.choices, "t0");
  auto r = execute_and_commit(f.registry, op_transfer("alice", "alice", 30), f.storage,
                              f.choices, "t1");
  EXPECT_EQ(r.result, "ok");
  EXPECT_TRUE(r.writes.empty()) << "self-transfer must not create money";
  EXPECT_EQ(f.storage.get("alice")->value, "100");
}

TEST(Exec, TransferInsufficientFundsWritesNothing) {
  Fixture f;
  execute_and_commit(f.registry, op_put("alice", "10"), f.storage, f.choices, "t0");
  auto r = execute_and_commit(f.registry, op_transfer("alice", "bob", 30), f.storage, f.choices, "t1");
  EXPECT_EQ(r.result, "insufficient");
  EXPECT_TRUE(r.writes.empty());
  EXPECT_EQ(f.storage.get("alice")->value, "10");
}

TEST(Exec, ReadsSeeOwnBufferedWrites) {
  Fixture f;
  TxnExec txn("t1", f.storage);
  txn.run(f.registry, op_put("k", "mine"), f.choices);
  const auto result = txn.run(f.registry, op_get("k"), f.choices);
  EXPECT_EQ(result, "mine");
  // Own-write read: no base version recorded for k.
  EXPECT_FALSE(txn.read_versions().contains("k"));
  // Nothing visible in storage before commit.
  EXPECT_FALSE(f.storage.get("k").has_value());
  txn.commit_into(f.storage);
  EXPECT_EQ(f.storage.get("k")->value, "mine");
}

TEST(Exec, ReadVersionsRecordBaseVersions) {
  Fixture f;
  execute_and_commit(f.registry, op_put("k", "v"), f.storage, f.choices, "t0");
  const auto base_version = f.storage.get("k")->version;
  TxnExec txn("t1", f.storage);
  txn.run(f.registry, op_get("k"), f.choices);
  EXPECT_EQ(txn.read_versions().at("k"), base_version);
}

TEST(Exec, UndeclaredReadRejected) {
  Fixture f;
  Operation op;
  op.proc = "get";
  op.args = {"secret"};
  // read_set deliberately empty: the procedure touches an undeclared item.
  TxnExec txn("t1", f.storage);
  EXPECT_THROW(txn.run(f.registry, op, f.choices), util::InvariantViolation);
}

TEST(Exec, UndeclaredWriteRejected) {
  Fixture f;
  Operation op;
  op.proc = "put";
  op.args = {"k", "v"};
  op.read_set = {"k"};  // declared as read, not write
  TxnExec txn("t1", f.storage);
  EXPECT_THROW(txn.run(f.registry, op, f.choices), util::InvariantViolation);
}

TEST(Exec, UnknownProcedureRejected) {
  Fixture f;
  Operation op;
  op.proc = "no_such_proc";
  TxnExec txn("t1", f.storage);
  EXPECT_THROW(txn.run(f.registry, op, f.choices), util::InvariantViolation);
}

TEST(Exec, LockPlanMergesReadAndWriteSets) {
  auto op = op_transfer("a", "b", 1);
  op.read_set.push_back("c");  // read-only extra
  const auto plan = op.lock_plan();
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], (std::pair<Key, bool>{"a", true}));
  EXPECT_EQ(plan[1], (std::pair<Key, bool>{"b", true}));
  EXPECT_EQ(plan[2], (std::pair<Key, bool>{"c", false}));
}

TEST(Exec, SeededChoicesAreDeterministic) {
  SeededChoices a(7), b(7), c(8);
  std::vector<std::int64_t> va, vb, vc;
  for (int i = 0; i < 20; ++i) {
    va.push_back(a.choose(1000));
    vb.push_back(b.choose(1000));
    vc.push_back(c.choose(1000));
  }
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(Exec, RecordingAndReplayChoicesRoundTrip) {
  SeededChoices inner(3);
  RecordingChoices rec(inner);
  std::vector<std::int64_t> leader;
  for (int i = 0; i < 10; ++i) leader.push_back(rec.choose(100));
  ReplayChoices replay(rec.log());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(replay.choose(100), leader[static_cast<std::size_t>(i)]);
  EXPECT_TRUE(replay.exhausted());
}

TEST(Exec, ReplayExhaustionIsAnError) {
  ReplayChoices replay({1});
  replay.choose(10);
  EXPECT_THROW(replay.choose(10), util::InvariantViolation);
}

TEST(Exec, NondeterministicProcedureFlagged) {
  const auto reg = ProcRegistry::with_builtins();
  EXPECT_TRUE(reg.deterministic("get"));
  EXPECT_TRUE(reg.deterministic("transfer"));
  EXPECT_FALSE(reg.deterministic("spin_nondet"));
}

TEST(Exec, SpinNondetDivergesAcrossDifferentLocalRngs) {
  const auto reg = ProcRegistry::with_builtins();
  Operation op;
  op.proc = "spin_nondet";
  op.args = {"k"};
  op.write_set = {"k"};

  util::Rng rng_a(1), rng_b(2);
  LocalRandomChoices ca(rng_a), cb(rng_b);
  Storage sa, sb;
  execute_and_commit(reg, op, sa, ca, "t1");
  execute_and_commit(reg, op, sb, cb, "t1");
  EXPECT_NE(sa.get("k")->value, sb.get("k")->value) << "expected replica divergence";
}

TEST(Exec, MultiOpTransactionCommitsAtomically) {
  Fixture f;
  TxnExec txn("t1", f.storage);
  txn.run(f.registry, op_put("a", "1"), f.choices);
  txn.run(f.registry, op_put("b", "2"), f.choices);
  const auto seq = txn.commit_into(f.storage);
  EXPECT_EQ(f.storage.get("a")->version, seq);
  EXPECT_EQ(f.storage.get("b")->version, seq);
}

}  // namespace
}  // namespace repli::db
