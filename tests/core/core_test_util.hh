// Shared helpers for technique tests.
#pragma once

#include <vector>

#include "core/cluster.hh"
#include "core/technique.hh"

namespace repli::core::testing {

inline std::vector<TechniqueKind> all_kinds() {
  std::vector<TechniqueKind> kinds;
  for (const auto& info : all_techniques()) kinds.push_back(info.kind);
  return kinds;
}

inline std::vector<TechniqueKind> strong_kinds() {
  std::vector<TechniqueKind> kinds;
  for (const auto& info : all_techniques()) {
    if (info.consistency == Consistency::Strong) kinds.push_back(info.kind);
  }
  return kinds;
}

inline std::string kind_param_name(const ::testing::TestParamInfo<TechniqueKind>& info) {
  std::string name{technique_name(info.param)};
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

inline ClusterConfig quiet_config(TechniqueKind kind, int replicas = 3, int clients = 1,
                                  std::uint64_t seed = 1) {
  ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = replicas;
  cfg.clients = clients;
  cfg.seed = seed;
  return cfg;
}

}  // namespace repli::core::testing
