// Invariants of the technique classification table itself (Figures 5/6/16
// as data): completeness, internal consistency with the paper's structure.
#include "core/technique.hh"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

namespace repli::core {
namespace {

TEST(TechniqueTable, CoversAllTenTechniques) {
  EXPECT_EQ(all_techniques().size(), 10u);
  std::set<std::string_view> names;
  for (const auto& info : all_techniques()) {
    EXPECT_TRUE(names.insert(info.name).second) << "duplicate name " << info.name;
    EXPECT_FALSE(info.figure.empty());
    EXPECT_EQ(&technique_info(info.kind), &info);
  }
}

TEST(TechniqueTable, PaperPatternsAreWellFormedPhaseSequences) {
  for (const auto& info : all_techniques()) {
    std::istringstream stream{std::string(info.paper_pattern)};
    std::string tok;
    std::vector<std::string> phases;
    while (stream >> tok) {
      EXPECT_TRUE(tok == "RE" || tok == "SC" || tok == "EX" || tok == "AC" || tok == "END")
          << info.name << " has bad phase token " << tok;
      phases.push_back(tok);
    }
    EXPECT_EQ(phases.front(), "RE") << info.name;
    EXPECT_EQ(std::count(phases.begin(), phases.end(), "EX"), 1) << info.name;
    EXPECT_EQ(std::count(phases.begin(), phases.end(), "END"), 1) << info.name;
  }
}

TEST(TechniqueTable, StrongMeansCoordinationBeforeResponse) {
  // Figure 15's structural claim, applied to the table itself.
  for (const auto& info : all_techniques()) {
    std::istringstream stream{std::string(info.paper_pattern)};
    std::string tok;
    bool coord_before_end = false;
    while (stream >> tok && tok != "END") {
      if (tok == "SC" || tok == "AC") coord_before_end = true;
    }
    EXPECT_EQ(coord_before_end, info.consistency == Consistency::Strong) << info.name;
  }
}

TEST(TechniqueTable, EagerIffEndIsLastForStrongTechniques) {
  for (const auto& info : all_techniques()) {
    const bool end_is_last = info.paper_pattern.ends_with("END");
    EXPECT_EQ(end_is_last, info.eager)
        << info.name << ": eager techniques finish with END, lazy ones with AC (§4.2)";
  }
}

TEST(TechniqueTable, OnlyActiveStyleOrderingNeedsDeterminism) {
  // Determinism is needed exactly when every replica executes without a
  // subsequent agreement phase (Fig. 16's discussion).
  for (const auto& info : all_techniques()) {
    if (info.needs_determinism) {
      EXPECT_TRUE(info.update_everywhere) << info.name;
      EXPECT_FALSE(info.paper_pattern.find("AC") < info.paper_pattern.find("END") &&
                   info.paper_pattern.find("AC") != std::string_view::npos &&
                   info.eager && !info.database)
          << info.name;
    }
  }
  EXPECT_TRUE(technique_info(TechniqueKind::Active).needs_determinism);
  EXPECT_TRUE(technique_info(TechniqueKind::EagerAbcast).needs_determinism);
  EXPECT_TRUE(technique_info(TechniqueKind::Certification).needs_determinism);
}

TEST(TechniqueTable, DatabaseSideMatchesFigureSix) {
  // Fig. 6 is a 2x2 over the database techniques; every quadrant occupied.
  std::set<std::pair<bool, bool>> quadrants;
  for (const auto& info : all_techniques()) {
    if (info.database) quadrants.insert({info.eager, info.update_everywhere});
  }
  EXPECT_EQ(quadrants.size(), 4u) << "all four Fig. 6 quadrants must be populated";
}

TEST(TechniqueTable, DsSideMatchesFigureFive) {
  // Fig. 5's quadrants: active {det, transparent}, semi-* {no-det,
  // transparent}, passive {no-det, not transparent}.
  int transparent = 0;
  for (const auto& info : all_techniques()) {
    if (info.database) continue;
    transparent += info.failure_transparent ? 1 : 0;
    if (info.needs_determinism) {
      EXPECT_TRUE(info.failure_transparent) << info.name;
    }
  }
  EXPECT_EQ(transparent, 3);  // active, semi-active, semi-passive
}

TEST(TechniqueTable, MultiOpSupportMatchesSectionFive) {
  // Section 5 extends the primary-copy and locking/certification protocols;
  // the pure single-operation DS techniques stay single-op.
  EXPECT_TRUE(technique_info(TechniqueKind::EagerPrimary).supports_multi_op);
  EXPECT_TRUE(technique_info(TechniqueKind::EagerLocking).supports_multi_op);
  EXPECT_TRUE(technique_info(TechniqueKind::Certification).supports_multi_op);
  EXPECT_TRUE(technique_info(TechniqueKind::LazyPrimary).supports_multi_op);
  EXPECT_TRUE(technique_info(TechniqueKind::LazyEverywhere).supports_multi_op);
  EXPECT_FALSE(technique_info(TechniqueKind::Active).supports_multi_op);
  EXPECT_FALSE(technique_info(TechniqueKind::Passive).supports_multi_op);
  EXPECT_FALSE(technique_info(TechniqueKind::SemiActive).supports_multi_op);
  EXPECT_FALSE(technique_info(TechniqueKind::SemiPassive).supports_multi_op);
  EXPECT_FALSE(technique_info(TechniqueKind::EagerAbcast).supports_multi_op);
}

}  // namespace
}  // namespace repli::core
