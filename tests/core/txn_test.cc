// Section 5: multi-operation transactions. The per-operation coordination
// loops (Figs. 12/13) and certification (Fig. 14) must keep multi-op
// transactions atomic and serializable.
#include <gtest/gtest.h>

#include "check/serializability.hh"
#include "core/cluster.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

std::vector<TechniqueKind> multi_op_kinds() {
  std::vector<TechniqueKind> kinds;
  for (const auto& info : all_techniques()) {
    if (info.supports_multi_op) kinds.push_back(info.kind);
  }
  return kinds;
}

class MultiOpTxns : public ::testing::TestWithParam<TechniqueKind> {};

TEST_P(MultiOpTxns, ThreeOpTransactionCommitsAtomically) {
  Cluster cluster(testing::quiet_config(GetParam()));
  Transaction txn{op_put("a", "1"), op_put("b", "2"), op_put("c", "3")};
  const auto reply = cluster.run_txn(0, txn, 60 * sim::kSec);
  ASSERT_TRUE(reply.ok) << reply.result;
  cluster.settle(2 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
  for (int r = 0; r < cluster.replica_count(); ++r) {
    const auto& storage = cluster.replica(r).storage();
    ASSERT_EQ(storage.size(), 3u) << "partial transaction at replica " << r;
    // Atomic install: all three writes share one version.
    EXPECT_EQ(storage.get("a")->version, storage.get("b")->version);
    EXPECT_EQ(storage.get("b")->version, storage.get("c")->version);
  }
}

TEST_P(MultiOpTxns, LaterOpsSeeEarlierOpsWrites) {
  Cluster cluster(testing::quiet_config(GetParam()));
  Transaction txn{op_put("x", "base"), op_append("x", "+more")};
  const auto reply = cluster.run_txn(0, txn, 60 * sim::kSec);
  ASSERT_TRUE(reply.ok) << reply.result;
  const auto get = cluster.run_op(0, op_get("x"), 60 * sim::kSec);
  EXPECT_EQ(get.result, "base+more");
}

TEST_P(MultiOpTxns, BankTransferPreservesTotalBalance) {
  Cluster cluster(testing::quiet_config(GetParam(), 3, 2));
  ASSERT_TRUE(cluster.run_txn(0, {op_put("acct-a", "100"), op_put("acct-b", "100")}, 60 * sim::kSec).ok);

  // Two clients transfer concurrently in opposite directions.
  int outstanding = 2;
  cluster.submit(0, {op_transfer("acct-a", "acct-b", 30)},
                 [&outstanding](const ClientReply&) { --outstanding; });
  cluster.submit(1, {op_transfer("acct-b", "acct-a", 10)},
                 [&outstanding](const ClientReply&) { --outstanding; });
  for (int rounds = 0; rounds < 6000 && outstanding > 0; ++rounds) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  EXPECT_EQ(outstanding, 0);
  cluster.settle(3 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
  if (!cluster.converged()) {
    for (int r = 0; r < cluster.replica_count(); ++r) {
      std::string dump = "replica " + std::to_string(r) + ":";
      for (const auto& [key, rec] : cluster.replica(r).storage().records()) {
        dump += " " + key + "=" + rec.value + "@" + std::to_string(rec.version) + "/" +
                rec.writer_txn;
      }
      ADD_FAILURE() << dump;
    }
  }

  const auto a = cluster.run_op(0, op_get("acct-a"), 60 * sim::kSec);
  const auto b = cluster.run_op(0, op_get("acct-b"), 60 * sim::kSec);
  ASSERT_TRUE(a.ok && b.ok) << a.result << " / " << b.result;
  const auto total = std::stoll(a.result) + std::stoll(b.result);
  EXPECT_EQ(total, 200) << "money created or destroyed: a=" << a.result << " b=" << b.result;
}

INSTANTIATE_TEST_SUITE_P(MultiOpTechniques, MultiOpTxns,
                         ::testing::ValuesIn(multi_op_kinds()), testing::kind_param_name);

TEST(MultiOpTxns, EagerLockingConcurrentTransfersSerializable) {
  auto cfg = testing::quiet_config(TechniqueKind::EagerLocking, 3, 3);
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.run_txn(0, {op_put("a", "300"), op_put("b", "300"), op_put("c", "300")},
                              60 * sim::kSec)
                  .ok);
  int outstanding = 6;
  const char* keys[3] = {"a", "b", "c"};
  for (int i = 0; i < 6; ++i) {
    const auto from = keys[i % 3];
    const auto to = keys[(i + 1) % 3];
    cluster.submit(i % 3, {op_transfer(from, to, 10)},
                   [&outstanding](const ClientReply&) { --outstanding; });
  }
  for (int rounds = 0; rounds < 6000 && outstanding > 0; ++rounds) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  EXPECT_EQ(outstanding, 0);
  cluster.settle(3 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
  const auto report = check::check_one_copy_serializability(cluster.history());
  EXPECT_TRUE(report.serializable) << report.violation;
}

TEST(MultiOpTxns, CertificationAbortsConflictingOptimists) {
  // Force write-write conflicts on a single hot key from all three homes:
  // certification must abort some attempts (counted) yet keep the final
  // counter exact thanks to retries.
  auto cfg = testing::quiet_config(TechniqueKind::Certification, 3, 3);
  Cluster cluster(cfg);
  int outstanding = 9;
  for (int i = 0; i < 9; ++i) {
    cluster.submit(i % 3, {op_add("hot", 1)},
                   [&outstanding](const ClientReply& r) {
                     EXPECT_TRUE(r.ok) << r.result;
                     --outstanding;
                   });
  }
  for (int rounds = 0; rounds < 6000 && outstanding > 0; ++rounds) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  EXPECT_EQ(outstanding, 0);
  const auto get = cluster.run_op(0, op_get("hot"), 60 * sim::kSec);
  EXPECT_EQ(get.result, "9");
  cluster.settle(2 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
}

TEST(MultiOpTxns, SingleOpTechniquesRejectMultiOp) {
  const auto& info = technique_info(TechniqueKind::Active);
  EXPECT_FALSE(info.supports_multi_op);
}

}  // namespace
}  // namespace repli::core
