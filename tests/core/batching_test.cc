// The batched replication fast path, checked end to end: batching must be
// deterministic, batch_max_ops=1 must be bit-identical to the default
// unbatched run, batched runs must stay convergent and one-copy
// serializable, and batching must actually reduce per-operation traffic.
#include <gtest/gtest.h>

#include "check/serializability.hh"
#include "core/cluster.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

struct RunFingerprint {
  std::vector<std::uint64_t> digests;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::vector<sim::Time> latencies;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_once(TechniqueKind kind, std::uint64_t seed, int batch_max_ops) {
  ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = 3;
  cfg.clients = 3;
  cfg.seed = seed;
  cfg.batch_max_ops = batch_max_ops;
  Cluster cluster(cfg);
  util::Rng rng(seed);
  int outstanding = 0;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 6; ++i) {
      const auto key = "k" + std::to_string(rng.uniform(0, 3));
      // Values stay numeric: `add` on a key previously `put` must still parse.
      const auto op = i % 2 == 0 ? op_add(key, 1) : op_put(key, std::to_string(i * 10));
      ++outstanding;
      const auto at = cluster.sim().now() + rng.uniform(0, 5) * sim::kMsec;
      cluster.sim().schedule_at(at, [&cluster, c, op, &outstanding] {
        cluster.submit_op(c, op, [&outstanding](const ClientReply&) { --outstanding; });
      });
    }
  }
  for (int rounds = 0; rounds < 3000 && outstanding > 0; ++rounds) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  EXPECT_EQ(outstanding, 0) << "requests left unanswered";
  cluster.settle(2 * sim::kSec);
  RunFingerprint fp;
  fp.digests = cluster.storage_digests();
  fp.messages = cluster.sim().net().messages_sent();
  fp.bytes = cluster.sim().net().bytes_sent();
  for (const auto& op : cluster.history().ops()) fp.latencies.push_back(op.response - op.invoke);
  return fp;
}

class BatchingDeterminism : public ::testing::TestWithParam<TechniqueKind> {};

TEST_P(BatchingDeterminism, SameSeedAndKnobsSameRun) {
  const auto a = run_once(GetParam(), 42, 8);
  const auto b = run_once(GetParam(), 42, 8);
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.latencies, b.latencies);
}

TEST_P(BatchingDeterminism, BatchOfOneIsBitIdenticalToUnbatched) {
  // batch_max_ops = 1 must route through the exact legacy code paths: same
  // digests, same message count, same bytes, same latencies.
  const auto unbatched = run_once(GetParam(), 42, 1);
  const auto batch_one = run_once(GetParam(), 42, 1);
  EXPECT_EQ(unbatched, batch_one);
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, BatchingDeterminism,
                         ::testing::ValuesIn(testing::all_kinds()),
                         testing::kind_param_name);

class BatchedCorrectness : public ::testing::TestWithParam<TechniqueKind> {};

TEST_P(BatchedCorrectness, BatchedRunsConvergeAndStaySerializable) {
  ClusterConfig cfg = testing::quiet_config(GetParam(), 3, 4, 7);
  cfg.batch_max_ops = 8;
  Cluster cluster(cfg);
  util::Rng rng(7);
  int outstanding = 0;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 6; ++i) {
      const auto key = "k" + std::to_string(rng.uniform(0, 2));
      const auto op = i % 3 == 0 ? op_get(key) : op_add(key, 1);
      ++outstanding;
      const auto at = cluster.sim().now() + rng.uniform(0, 10) * sim::kMsec;
      cluster.sim().schedule_at(at, [&cluster, c, op, &outstanding] {
        cluster.submit_op(c, op, [&outstanding](const ClientReply&) { --outstanding; });
      });
    }
  }
  for (int rounds = 0; rounds < 3000 && outstanding > 0; ++rounds) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  EXPECT_EQ(outstanding, 0) << "requests left unanswered under batching";
  cluster.settle(2 * sim::kSec);
  EXPECT_TRUE(cluster.converged()) << "batched run diverged";
  const auto report = check::check_one_copy_serializability(cluster.history());
  EXPECT_TRUE(report.serializable) << report.violation;
  EXPECT_TRUE(report.write_orders_agree) << report.violation;
  EXPECT_GT(report.transactions, 0u);
}

INSTANTIATE_TEST_SUITE_P(StrongTechniques, BatchedCorrectness,
                         ::testing::ValuesIn(testing::strong_kinds()),
                         testing::kind_param_name);

TEST(BatchingTraffic, ActiveReplicationSendsFewerMessagesPerOpWhenBatched) {
  auto msgs_per_op = [](int batch_max_ops) {
    ClusterConfig cfg;
    cfg.kind = TechniqueKind::Active;
    cfg.replicas = 3;
    cfg.clients = 6;
    cfg.seed = 5;
    cfg.batch_max_ops = batch_max_ops;
    Cluster cluster(cfg);
    int outstanding = 0;
    const int total = 48;
    for (int i = 0; i < total; ++i) {
      ++outstanding;
      cluster.submit_op(i % 6, op_add("k" + std::to_string(i % 4), 1),
                        [&outstanding](const ClientReply&) { --outstanding; });
    }
    for (int rounds = 0; rounds < 3000 && outstanding > 0; ++rounds) {
      cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
    }
    EXPECT_EQ(outstanding, 0);
    cluster.settle(1 * sim::kSec);
    return static_cast<double>(cluster.sim().net().messages_excluding("gcs.Heartbeat")) / total;
  };
  const double unbatched = msgs_per_op(1);
  const double batched = msgs_per_op(8);
  EXPECT_LT(batched * 2.0, unbatched)
      << "batch=8 should at least halve msgs/op (got " << batched << " vs " << unbatched << ")";
}

}  // namespace
}  // namespace repli::core
