// The determinism axis of Fig. 5, probed for real: a nondeterministic
// stored procedure makes active replication diverge, while the techniques
// the paper classifies as "determinism not needed" stay consistent.
#include <gtest/gtest.h>

#include "core/cluster.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

TEST(Determinism, ActiveReplicationDivergesOnNondeterministicProcedure) {
  Cluster cluster(testing::quiet_config(TechniqueKind::Active));
  const auto reply = cluster.run_op(0, op_spin_nondet("slot"));
  ASSERT_TRUE(reply.ok);
  cluster.settle(1 * sim::kSec);
  // Every replica executed with its own randomness: states differ.
  EXPECT_FALSE(cluster.converged())
      << "active replication should diverge on nondeterministic execution (Fig. 5)";
}

TEST(Determinism, SemiActiveLeaderDecisionKeepsReplicasConsistent) {
  Cluster cluster(testing::quiet_config(TechniqueKind::SemiActive));
  const auto reply = cluster.run_op(0, op_spin_nondet("slot"));
  ASSERT_TRUE(reply.ok);
  cluster.settle(1 * sim::kSec);
  EXPECT_TRUE(cluster.converged())
      << "semi-active must replay the leader's choices identically";
  // The stored value reflects the leader's choice on every replica.
  const auto v0 = cluster.replica(0).storage().get("slot");
  ASSERT_TRUE(v0.has_value());
  for (int r = 1; r < 3; ++r) {
    const auto v = cluster.replica(r).storage().get("slot");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->value, v0->value);
  }
}

TEST(Determinism, PassiveToleratesNondeterminism) {
  Cluster cluster(testing::quiet_config(TechniqueKind::Passive));
  const auto reply = cluster.run_op(0, op_spin_nondet("slot"));
  ASSERT_TRUE(reply.ok);
  cluster.settle(1 * sim::kSec);
  EXPECT_TRUE(cluster.converged())
      << "passive replication ships state changes, so nondeterminism is harmless";
}

TEST(Determinism, SemiPassiveToleratesNondeterminism) {
  Cluster cluster(testing::quiet_config(TechniqueKind::SemiPassive));
  const auto reply = cluster.run_op(0, op_spin_nondet("slot"));
  ASSERT_TRUE(reply.ok);
  cluster.settle(1 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
}

TEST(Determinism, SemiActiveRepeatedNondeterministicOpsStayConsistent) {
  Cluster cluster(testing::quiet_config(TechniqueKind::SemiActive));
  for (int i = 0; i < 5; ++i) {
    const auto reply = cluster.run_op(0, op_spin_nondet("slot-" + std::to_string(i)));
    ASSERT_TRUE(reply.ok);
  }
  cluster.settle(1 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
}

TEST(Determinism, TechniqueTableMatchesProbes) {
  // Fig. 5's classification is stored in the technique table; spot-check it
  // against the behaviour probed above.
  EXPECT_TRUE(technique_info(TechniqueKind::Active).needs_determinism);
  EXPECT_FALSE(technique_info(TechniqueKind::SemiActive).needs_determinism);
  EXPECT_FALSE(technique_info(TechniqueKind::Passive).needs_determinism);
  EXPECT_FALSE(technique_info(TechniqueKind::SemiPassive).needs_determinism);
}

}  // namespace
}  // namespace repli::core
