// Tests for the configurable design options: read-one/write-all reads in
// the locking technique, and the lazy reconciliation policies.
#include <gtest/gtest.h>

#include "check/linearizability.hh"
#include "check/serializability.hh"
#include "core/cluster.hh"
#include "core/eager_abcast.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

TEST(Rowa, ReadOnlyOpsStayLocal) {
  auto cfg = testing::quiet_config(TechniqueKind::EagerLocking);
  cfg.locking_read_one_write_all = true;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "v")).ok);
  const auto msgs_before = cluster.sim().net().messages_excluding("gcs.Heartbeat");
  const auto read = cluster.run_op(0, op_get("k"));
  ASSERT_TRUE(read.ok);
  EXPECT_EQ(read.result, "v");
  const auto msgs_for_read = cluster.sim().net().messages_excluding("gcs.Heartbeat") - msgs_before;
  // Local locks + local execution + local commit: only the client round
  // trip touches the wire.
  EXPECT_LE(msgs_for_read, 2) << "ROWA read should not involve other replicas";
}

TEST(Rowa, DisabledReadsLockEverywhere) {
  auto cfg = testing::quiet_config(TechniqueKind::EagerLocking);
  cfg.locking_read_one_write_all = false;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "v")).ok);
  const auto msgs_before = cluster.sim().net().messages_excluding("gcs.Heartbeat");
  const auto read = cluster.run_op(0, op_get("k"));
  ASSERT_TRUE(read.ok);
  const auto msgs_for_read = cluster.sim().net().messages_excluding("gcs.Heartbeat") - msgs_before;
  EXPECT_GT(msgs_for_read, 6) << "without ROWA a read pays lock+exec rounds everywhere";
}

TEST(Rowa, ReadLatencyBeatsLockEverywhere) {
  auto measure_read = [](bool rowa) {
    auto cfg = testing::quiet_config(TechniqueKind::EagerLocking);
    cfg.locking_read_one_write_all = rowa;
    Cluster cluster(cfg);
    cluster.run_op(0, op_put("k", "v"));
    const auto t0 = cluster.sim().now();
    cluster.run_op(0, op_get("k"));
    const auto& rec = cluster.history().ops().back();
    (void)t0;
    return rec.response - rec.invoke;
  };
  EXPECT_LT(measure_read(true), measure_read(false));
}

TEST(Rowa, MixedTransactionStillSerializable) {
  auto cfg = testing::quiet_config(TechniqueKind::EagerLocking, 3, 2);
  cfg.locking_read_one_write_all = true;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.run_op(0, op_put("balance", "100")).ok);
  // Mixed read+write transactions from two clients.
  int outstanding = 4;
  for (int i = 0; i < 4; ++i) {
    cluster.submit(i % 2, {op_get("balance"), op_add("balance", 10)},
                   [&outstanding](const ClientReply& r) {
                     EXPECT_TRUE(r.ok) << r.result;
                     --outstanding;
                   });
  }
  for (int rounds = 0; rounds < 6000 && outstanding > 0; ++rounds) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  EXPECT_EQ(outstanding, 0);
  cluster.settle(2 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
  const auto read = cluster.run_op(0, op_get("balance"), 60 * sim::kSec);
  EXPECT_EQ(read.result, "140");
  const auto report = check::check_one_copy_serializability(cluster.history());
  EXPECT_TRUE(report.serializable) << report.violation;
}

class LazyPolicies : public ::testing::TestWithParam<int> {};

TEST_P(LazyPolicies, ConvergesUnderConcurrentConflicts) {
  auto cfg = testing::quiet_config(TechniqueKind::LazyEverywhere, 3, 3, 23);
  cfg.lazy_reconciliation = GetParam();
  cfg.lazy_propagation_delay = 20 * sim::kMsec;
  Cluster cluster(cfg);
  int outstanding = 9;
  for (int i = 0; i < 9; ++i) {
    cluster.submit_op(i % 3, op_put("hot", "w" + std::to_string(i)),
                      [&outstanding](const ClientReply&) { --outstanding; });
  }
  for (int rounds = 0; rounds < 3000 && outstanding > 0; ++rounds) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  EXPECT_EQ(outstanding, 0);
  cluster.settle(5 * sim::kSec);
  EXPECT_TRUE(cluster.converged()) << "policy " << GetParam() << " failed to reconcile";
  // One of the nine writes won everywhere.
  const auto final0 = cluster.replica(0).storage().get("hot");
  ASSERT_TRUE(final0.has_value());
  EXPECT_TRUE(final0->value.starts_with("w"));
}

TEST_P(LazyPolicies, IndependentKeysAllSurvive) {
  auto cfg = testing::quiet_config(TechniqueKind::LazyEverywhere, 3, 3, 29);
  cfg.lazy_reconciliation = GetParam();
  Cluster cluster(cfg);
  for (int c = 0; c < 3; ++c) {
    ASSERT_TRUE(cluster.run_op(c, op_put("own-" + std::to_string(c), "v")).ok);
  }
  cluster.settle(5 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const auto rec = cluster.replica(r).storage().get("own-" + std::to_string(c));
      ASSERT_TRUE(rec.has_value()) << "replica " << r << " missing own-" << c;
      EXPECT_EQ(rec->value, "v");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, LazyPolicies, ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? std::string("abcast_order")
                                                  : std::string("timestamp_lww");
                         });

TEST(LazyPolicies, LwwCountsLostConcurrentUpdates) {
  auto cfg = testing::quiet_config(TechniqueKind::LazyEverywhere, 3, 3, 31);
  cfg.lazy_reconciliation = 1;
  cfg.lazy_propagation_delay = 50 * sim::kMsec;
  Cluster cluster(cfg);
  int outstanding = 3;
  for (int c = 0; c < 3; ++c) {
    cluster.submit_op(c, op_put("contested", "from-" + std::to_string(c)),
                      [&outstanding](const ClientReply&) { --outstanding; });
  }
  cluster.settle(5 * sim::kSec);
  EXPECT_EQ(outstanding, 0);
  EXPECT_TRUE(cluster.converged());
  EXPECT_GT(cluster.sim().metrics().counter_value("lazy.undone"), 0);
}

TEST(LazyPolicies, LwwUsesFewerMessagesThanAbcastOrder) {
  auto messages = [](int policy) {
    auto cfg = testing::quiet_config(TechniqueKind::LazyEverywhere, 3, 1, 37);
    cfg.lazy_reconciliation = policy;
    Cluster cluster(cfg);
    for (int i = 0; i < 8; ++i) cluster.run_op(0, op_put("k" + std::to_string(i), "v"));
    cluster.settle(3 * sim::kSec);
    EXPECT_TRUE(cluster.converged());
    return cluster.sim().net().messages_excluding("gcs.Heartbeat");
  };
  EXPECT_LT(messages(1), messages(0))
      << "LWW should skip the ordering traffic the abcast policy pays";
}

TEST(CertificationLocalReads, ReadsSkipTheBroadcast) {
  auto cfg = testing::quiet_config(TechniqueKind::Certification);
  cfg.certification_local_reads = true;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "v")).ok);
  const auto msgs_before = cluster.sim().net().messages_excluding("gcs.Heartbeat");
  const auto read = cluster.run_op(0, op_get("k"));
  ASSERT_TRUE(read.ok);
  EXPECT_EQ(read.result, "v");
  const auto msgs_for_read =
      cluster.sim().net().messages_excluding("gcs.Heartbeat") - msgs_before;
  EXPECT_LE(msgs_for_read, 2) << "[KA98] local read must not hit the ABCAST";
}

TEST(CertificationLocalReads, ReadLatencyDrops) {
  auto read_latency = [](bool local) {
    auto cfg = testing::quiet_config(TechniqueKind::Certification);
    cfg.certification_local_reads = local;
    Cluster cluster(cfg);
    cluster.run_op(0, op_put("k", "v"));
    cluster.run_op(0, op_get("k"));
    const auto& rec = cluster.history().ops().back();
    return rec.response - rec.invoke;
  };
  EXPECT_LT(read_latency(true), read_latency(false));
}

TEST(CertificationLocalReads, WritesStillCertifiedAndConsistent) {
  auto cfg = testing::quiet_config(TechniqueKind::Certification, 3, 3, 83);
  cfg.certification_local_reads = true;
  Cluster cluster(cfg);
  int outstanding = 9;
  for (int i = 0; i < 9; ++i) {
    cluster.submit_op(i % 3, op_add("hot", 1),
                      [&outstanding](const ClientReply& r) {
                        EXPECT_TRUE(r.ok);
                        --outstanding;
                      });
  }
  for (int rounds = 0; rounds < 3000 && outstanding > 0; ++rounds) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  EXPECT_EQ(outstanding, 0);
  cluster.settle(2 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
  const auto get = cluster.run_op(0, op_get("hot"), 60 * sim::kSec);
  EXPECT_EQ(get.result, "9");
}

TEST(OptimisticAbcast, SerialWorkloadHitsAndMatchesConservative) {
  auto run = [](bool optimistic) {
    auto cfg = testing::quiet_config(TechniqueKind::EagerAbcast);
    cfg.eager_abcast_optimistic = optimistic;
    Cluster cluster(cfg);
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(cluster.run_op(0, op_add("n", 2)).ok);
    }
    cluster.settle(2 * sim::kSec);
    EXPECT_TRUE(cluster.converged());
    return cluster.replica(0).storage().get("n")->value;
  };
  EXPECT_EQ(run(true), run(false));
  EXPECT_EQ(run(true), "12");
}

TEST(OptimisticAbcast, TentativeExecutionValidatesAtLowContention) {
  auto cfg = testing::quiet_config(TechniqueKind::EagerAbcast);
  cfg.eager_abcast_optimistic = true;
  Cluster cluster(cfg);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.run_op(0, op_put("k" + std::to_string(i), "v")).ok);
  }
  EXPECT_GT(cluster.sim().metrics().counter_value("optimistic.hits"), 0);
  // Blind writes validate trivially; RMW against distinct keys should too.
  auto& replica = dynamic_cast<EagerAbcastReplica&>(cluster.replica(1));
  EXPECT_GT(replica.optimistic_hits(), 0);
}

TEST(OptimisticAbcast, ReducesResponseTime) {
  auto latency = [](bool optimistic) {
    auto cfg = testing::quiet_config(TechniqueKind::EagerAbcast, 3, 2);
    cfg.eager_abcast_optimistic = optimistic;
    Cluster cluster(cfg);
    double total = 0;
    for (int i = 0; i < 10; ++i) {
      // Client 1's home (replica 1) is not the sequencer: its operations
      // benefit from overlapping execution with the ordering round.
      EXPECT_TRUE(cluster.run_op(1, op_put("k" + std::to_string(i), "v"), 60 * sim::kSec).ok);
    }
    for (const auto& op : cluster.history().ops()) {
      total += static_cast<double>(op.response - op.invoke);
    }
    return total / 10;
  };
  EXPECT_LT(latency(true), latency(false))
      << "optimistic processing should hide execution behind ordering [KPAS99a]";
}

TEST(OptimisticAbcast, ConflictingConcurrencyStaysConsistent) {
  auto cfg = testing::quiet_config(TechniqueKind::EagerAbcast, 3, 3, 71);
  cfg.eager_abcast_optimistic = true;
  Cluster cluster(cfg);
  int outstanding = 12;
  for (int i = 0; i < 12; ++i) {
    cluster.submit_op(i % 3, op_add("hot", 1),
                      [&outstanding](const ClientReply& r) {
                        EXPECT_TRUE(r.ok);
                        --outstanding;
                      });
  }
  for (int rounds = 0; rounds < 3000 && outstanding > 0; ++rounds) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  EXPECT_EQ(outstanding, 0);
  cluster.settle(2 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
  // RMW on one hot key from three homes: misses must occur and be redone
  // correctly — the final counter is exact and histories check out.
  const auto get = cluster.run_op(0, op_get("hot"), 60 * sim::kSec);
  EXPECT_EQ(get.result, "12");
  EXPECT_GT(cluster.sim().metrics().counter_value("optimistic.misses"), 0)
      << "a contended RMW workload should mis-speculate sometimes";
  const auto lin = check::check_linearizability(cluster.history());
  EXPECT_TRUE(lin.linearizable) << lin.violation;
  const auto sr = check::check_one_copy_serializability(cluster.history());
  EXPECT_TRUE(sr.serializable) << sr.violation;
}

}  // namespace
}  // namespace repli::core
