// Failure behaviour: the failure-transparency axis of Fig. 5, primary
// failover, the 2PC blocking window, and exactly-once under retries.
#include <gtest/gtest.h>

#include "core/cluster.hh"
#include "core/eager_primary.hh"
#include "core/passive.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

TEST(Failover, ActiveReplicationMasksReplicaCrash) {
  Cluster cluster(testing::quiet_config(TechniqueKind::Active));
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "before")).ok);
  cluster.crash_replica(2);  // not the sequencer
  const auto reply = cluster.run_op(0, op_put("k", "after"));
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(cluster.client(0).timeouts(), 0)
      << "active replication must hide the crash from the client (Fig. 5)";
}

TEST(Failover, ActiveReplicationSurvivesSequencerCrash) {
  Cluster cluster(testing::quiet_config(TechniqueKind::Active));
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "before")).ok);
  cluster.crash_replica(0);  // the sequencer
  cluster.settle(500 * sim::kMsec);  // failure detection + takeover
  const auto reply = cluster.run_op(0, op_put("k", "after"), 60 * sim::kSec);
  ASSERT_TRUE(reply.ok) << reply.result;
  const auto get = cluster.run_op(0, op_get("k"));
  EXPECT_EQ(get.result, "after");
}

TEST(Failover, SemiPassiveMasksCoordinatorCrash) {
  Cluster cluster(testing::quiet_config(TechniqueKind::SemiPassive));
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "before")).ok);
  cluster.crash_replica(0);  // round-0 consensus coordinator
  const auto reply = cluster.run_op(0, op_put("k", "after"), 60 * sim::kSec);
  ASSERT_TRUE(reply.ok) << reply.result;
  EXPECT_EQ(cluster.client(0).timeouts(), 0)
      << "semi-passive tolerates coordinator crashes without client retries";
}

TEST(Failover, PassivePrimaryCrashPromotesBackupAndClientRetries) {
  auto cfg = testing::quiet_config(TechniqueKind::Passive);
  cfg.client_retry_timeout = 100 * sim::kMsec;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "committed-before")).ok);

  cluster.crash_replica(0);
  cluster.settle(1 * sim::kSec);  // failure detection + view change
  auto& survivor = dynamic_cast<PassiveReplica&>(cluster.replica(1));
  EXPECT_TRUE(survivor.is_primary());
  EXPECT_GE(survivor.view().id, 1u);

  const auto reply = cluster.run_op(0, op_put("k2", "after-failover"), 60 * sim::kSec);
  ASSERT_TRUE(reply.ok) << reply.result;
  // The client noticed (timeout or redirect): not failure-transparent.
  const auto get = cluster.run_op(0, op_get("k"));
  EXPECT_EQ(get.result, "committed-before") << "committed state lost in failover";
}

TEST(Failover, PassiveCommittedDataSurvivesPrimaryCrash) {
  for (const std::uint64_t seed : {1, 2, 3, 4}) {
    auto cfg = testing::quiet_config(TechniqueKind::Passive, 3, 1, seed);
    cfg.client_retry_timeout = 100 * sim::kMsec;
    Cluster cluster(cfg);
    // Commit a handful, then crash the primary *while* a request is running.
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(cluster.run_op(0, op_put("k" + std::to_string(i), "v")).ok);
    }
    bool done = false;
    cluster.submit_op(0, op_put("k-inflight", "v"), [&done](const ClientReply&) { done = true; });
    cluster.sim().schedule_after(150, [&cluster] { cluster.crash_replica(0); });
    for (int rounds = 0; rounds < 1000 && !done; ++rounds) {
      cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
    }
    EXPECT_TRUE(done) << "in-flight request never completed after failover, seed " << seed;
    cluster.settle(1 * sim::kSec);
    // Every previously-acknowledged write is still readable.
    for (int i = 0; i < 3; ++i) {
      const auto get = cluster.run_op(0, op_get("k" + std::to_string(i)), 60 * sim::kSec);
      EXPECT_EQ(get.result, "v") << "lost committed write k" << i << ", seed " << seed;
    }
    // Survivors agree with each other.
    EXPECT_TRUE(cluster.converged()) << "seed " << seed;
  }
}

TEST(Failover, EagerPrimaryHotStandbyTakesOver) {
  auto cfg = testing::quiet_config(TechniqueKind::EagerPrimary);
  cfg.client_retry_timeout = 150 * sim::kMsec;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "v1")).ok);

  cluster.crash_replica(0);
  cluster.settle(1 * sim::kSec);
  auto& standby = dynamic_cast<EagerPrimaryReplica&>(cluster.replica(1));
  EXPECT_TRUE(standby.is_primary());

  const auto reply = cluster.run_op(0, op_put("k", "v2"), 60 * sim::kSec);
  ASSERT_TRUE(reply.ok) << reply.result;
  const auto get = cluster.run_op(0, op_get("k"), 60 * sim::kSec);
  EXPECT_EQ(get.result, "v2");
  EXPECT_GT(cluster.client(0).timeouts(), 0) << "DB failover is client-visible (§4.1)";
}

TEST(Failover, TwoPhaseCommitBlockingWindowIsObservable) {
  // Crash the eager-primary coordinator between votes and decision: the
  // backups must sit in doubt until the termination protocol resolves them.
  auto cfg = testing::quiet_config(TechniqueKind::EagerPrimary);
  Cluster cluster(cfg);
  bool got_reply = false;
  cluster.submit_op(0, op_put("k", "v"), [&got_reply](const ClientReply&) { got_reply = true; });
  // Let execution + shipping + votes happen, then kill the coordinator
  // right around the decision point.
  cluster.settle(700);
  cluster.crash_replica(0);
  cluster.settle(5 * sim::kSec);
  // Survivors resolved the in-doubt transaction one way or the other
  // (termination protocol) and agree with each other.
  EXPECT_TRUE(cluster.converged());
  (void)got_reply;  // the client may or may not have been answered: crash timing
}

TEST(Failover, LazyPrimarySecondariesKeepServingReads) {
  auto cfg = testing::quiet_config(TechniqueKind::LazyPrimary, 3, 2);
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "v")).ok);
  cluster.settle(1 * sim::kSec);  // propagate
  cluster.crash_replica(0);      // primary gone
  // Client 1 reads at its home secondary: lazy replication's availability win.
  const auto get = cluster.run_op(1, op_get("k"));
  ASSERT_TRUE(get.ok);
  EXPECT_EQ(get.result, "v");
}

TEST(Failover, ClientGivesUpAfterMaxAttempts) {
  auto cfg = testing::quiet_config(TechniqueKind::Passive, 1, 1);
  cfg.client_retry_timeout = 50 * sim::kMsec;
  cfg.client_max_attempts = 3;
  Cluster cluster(cfg);
  cluster.crash_replica(0);  // nobody left to answer
  const auto reply = cluster.run_op(0, op_put("k", "v"), 60 * sim::kSec);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.result, "timeout");
}

TEST(Failover, ExactlyOnceUnderClientRetries) {
  // Aggressive retry timeout forces duplicate submissions; the reply cache
  // must keep the counter from double-counting.
  auto cfg = testing::quiet_config(TechniqueKind::EagerPrimary);
  cfg.client_retry_timeout = 2 * sim::kMsec;  // far below one round trip
  Cluster cluster(cfg);
  const auto reply = cluster.run_op(0, op_add("counter", 1), 60 * sim::kSec);
  ASSERT_TRUE(reply.ok);
  cluster.settle(1 * sim::kSec);
  const auto get = cluster.run_op(0, op_get("counter"), 60 * sim::kSec);
  EXPECT_EQ(get.result, "1") << "duplicate execution under client retries";
}

}  // namespace
}  // namespace repli::core
