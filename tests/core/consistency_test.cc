// Consistency guarantees under concurrency: strong techniques must produce
// linearizable client histories (DS side) / one-copy-serializable commit
// histories (DB side); lazy techniques must converge after reconciliation.
#include <gtest/gtest.h>

#include "check/linearizability.hh"
#include "check/serializability.hh"
#include "core/cluster.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

struct Sweep {
  TechniqueKind kind;
  std::uint64_t seed;
};

std::vector<Sweep> sweeps(const std::vector<TechniqueKind>& kinds,
                          std::initializer_list<std::uint64_t> seeds) {
  std::vector<Sweep> out;
  for (const auto kind : kinds) {
    for (const auto seed : seeds) out.push_back({kind, seed});
  }
  return out;
}

std::string sweep_name(const ::testing::TestParamInfo<Sweep>& info) {
  std::string name{technique_name(info.param.kind)};
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(info.param.seed);
}

/// Drives `clients` concurrent clients hammering a small keyspace, then
/// waits for quiescence.
void hammer(Cluster& cluster, int clients, int ops_per_client, std::uint64_t seed) {
  util::Rng rng(seed);
  int outstanding = 0;
  for (int c = 0; c < clients; ++c) {
    for (int i = 0; i < ops_per_client; ++i) {
      const auto key = "k" + std::to_string(rng.uniform(0, 2));  // 3 hot keys
      db::Operation op;
      const auto roll = rng.uniform(0, 2);
      if (roll == 0) {
        op = op_get(key);
      } else if (roll == 1) {
        op = op_put(key, "c" + std::to_string(c) + "i" + std::to_string(i));
      } else {
        op = op_add("counter" + std::to_string(c % 2), 1);
      }
      ++outstanding;
      // Stagger submissions so requests genuinely overlap.
      const auto at = cluster.sim().now() + rng.uniform(0, 20) * sim::kMsec;
      cluster.sim().schedule_at(at, [&cluster, c, op, &outstanding] {
        cluster.submit_op(c, op, [&outstanding](const ClientReply&) { --outstanding; });
      });
    }
  }
  for (int rounds = 0; rounds < 3000 && outstanding > 0; ++rounds) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  EXPECT_EQ(outstanding, 0) << "requests left unanswered";
  cluster.settle(2 * sim::kSec);  // drain propagation
}

class StrongConsistency : public ::testing::TestWithParam<Sweep> {};

TEST_P(StrongConsistency, ConcurrentConflictsStaySerializable) {
  auto cfg = testing::quiet_config(GetParam().kind, 3, 3, GetParam().seed);
  Cluster cluster(cfg);
  hammer(cluster, 3, 8, GetParam().seed);

  EXPECT_TRUE(cluster.converged()) << "strong technique diverged";
  const auto report = check::check_one_copy_serializability(cluster.history());
  EXPECT_TRUE(report.serializable) << report.violation;
  EXPECT_TRUE(report.write_orders_agree) << report.violation;
  EXPECT_GT(report.transactions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweeps, StrongConsistency,
                         ::testing::ValuesIn(sweeps(testing::strong_kinds(), {7, 21})),
                         sweep_name);

class DsLinearizability : public ::testing::TestWithParam<Sweep> {};

TEST_P(DsLinearizability, ClientHistoriesLinearizable) {
  auto cfg = testing::quiet_config(GetParam().kind, 3, 3, GetParam().seed);
  Cluster cluster(cfg);
  hammer(cluster, 3, 6, GetParam().seed);

  const auto report = check::check_linearizability(cluster.history());
  EXPECT_TRUE(report.linearizable) << report.violation;
  EXPECT_GT(report.ops_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, DsLinearizability,
    ::testing::ValuesIn(sweeps({TechniqueKind::Active, TechniqueKind::Passive,
                                TechniqueKind::SemiActive, TechniqueKind::SemiPassive,
                                TechniqueKind::EagerAbcast, TechniqueKind::Certification},
                               {3, 11})),
    sweep_name);

class LazyConvergence : public ::testing::TestWithParam<Sweep> {};

TEST_P(LazyConvergence, DivergesTransientlyButConverges) {
  auto cfg = testing::quiet_config(GetParam().kind, 3, 3, GetParam().seed);
  cfg.lazy_propagation_delay = 20 * sim::kMsec;
  Cluster cluster(cfg);
  hammer(cluster, 3, 8, GetParam().seed);

  cluster.settle(5 * sim::kSec);
  EXPECT_TRUE(cluster.converged()) << "lazy technique failed to reconcile";
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, LazyConvergence,
    ::testing::ValuesIn(
        sweeps({TechniqueKind::LazyPrimary, TechniqueKind::LazyEverywhere}, {5, 13})),
    sweep_name);

TEST(LazyWeakness, SecondaryReadsCanBeStale) {
  auto cfg = testing::quiet_config(TechniqueKind::LazyPrimary, 3, 2);
  cfg.lazy_propagation_delay = 200 * sim::kMsec;  // wide staleness window
  Cluster cluster(cfg);
  // Client 1's home is replica 1 (a secondary).
  const auto put = cluster.run_op(0, op_put("fresh", "new-value"));
  ASSERT_TRUE(put.ok);
  const auto stale_read = cluster.run_op(1, op_get("fresh"));
  ASSERT_TRUE(stale_read.ok);
  EXPECT_EQ(stale_read.result, "") << "expected a stale (empty) read before propagation";
  cluster.settle(1 * sim::kSec);
  const auto fresh_read = cluster.run_op(1, op_get("fresh"));
  EXPECT_EQ(fresh_read.result, "new-value");
}

TEST(LazyWeakness, UpdateEverywhereCountsUndoneTransactions) {
  auto cfg = testing::quiet_config(TechniqueKind::LazyEverywhere, 3, 3);
  cfg.lazy_propagation_delay = 50 * sim::kMsec;  // big reconciliation window
  Cluster cluster(cfg);
  // Three clients blind-write the same key concurrently from different
  // replicas: reconciliation must sacrifice some of the work.
  int outstanding = 3;
  for (int c = 0; c < 3; ++c) {
    cluster.submit_op(c, op_put("contested", "value-" + std::to_string(c)),
                      [&outstanding](const ClientReply&) { --outstanding; });
  }
  cluster.settle(5 * sim::kSec);
  EXPECT_EQ(outstanding, 0);
  EXPECT_TRUE(cluster.converged());
  EXPECT_GT(cluster.sim().metrics().counter_value("lazy.undone"), 0)
      << "conflicting optimistic commits should cost undone transactions";
}

TEST(Checkers, CatchInjectedNonLinearizableHistory) {
  // Sanity: the checker is not vacuously true.
  std::vector<check::LinOp> ops;
  ops.push_back({check::LinOp::Kind::Put, "a", "ok", 0, 10});
  ops.push_back({check::LinOp::Kind::Get, "", "b", 20, 30});  // reads a value never written
  EXPECT_FALSE(check::check_register_history(ops));
}

TEST(Checkers, CatchInjectedWriteOrderDisagreement) {
  History history;
  CommitRecord a;
  a.replica = 0;
  a.txn = "t1";
  a.writes = {{"k", "1"}};
  a.commit_seq = 1;
  history.commit(a);
  CommitRecord b = a;
  b.txn = "t2";
  b.commit_seq = 2;
  history.commit(b);
  // Replica 1 saw them in the opposite order.
  CommitRecord c = b;
  c.replica = 1;
  c.commit_seq = 1;
  history.commit(c);
  CommitRecord d = a;
  d.replica = 1;
  d.commit_seq = 2;
  history.commit(d);
  const auto report = check::check_one_copy_serializability(history);
  EXPECT_FALSE(report.serializable);
  EXPECT_FALSE(report.write_orders_agree);
}

}  // namespace
}  // namespace repli::core
