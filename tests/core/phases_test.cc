// Figure 16 as a test: the phase pattern each technique *actually*
// exhibits, extracted from instrumented runs, must equal the pattern the
// paper tabulates.
#include <gtest/gtest.h>

#include "core/cluster.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

class PhasePatterns : public ::testing::TestWithParam<TechniqueKind> {};

TEST_P(PhasePatterns, ObservedPatternMatchesPaper) {
  const auto& info = technique_info(GetParam());
  Cluster cluster(testing::quiet_config(GetParam()));
  const auto reply = cluster.run_op(0, op_put("item-x", "update"));
  ASSERT_TRUE(reply.ok) << reply.result;
  // Let post-reply coordination (lazy AC) land in the trace.
  cluster.settle(2 * sim::kSec);

  const auto requests = cluster.sim().trace().requests();
  ASSERT_FALSE(requests.empty());
  const auto pattern = cluster.sim().trace().pattern(requests.front());
  EXPECT_EQ(sim::pattern_to_string(pattern), info.paper_pattern)
      << info.name << " diverges from the paper's " << info.figure;
}

TEST_P(PhasePatterns, EagerMeansAgreementBeforeResponse) {
  const auto& info = technique_info(GetParam());
  Cluster cluster(testing::quiet_config(GetParam()));
  cluster.run_op(0, op_put("k", "v"));
  cluster.settle(2 * sim::kSec);

  const auto requests = cluster.sim().trace().requests();
  const auto events = cluster.sim().trace().phases_for(requests.front());
  sim::Time response_at = -1;
  sim::Time first_ac = -1;
  for (const auto& ev : events) {
    if (ev.phase == sim::Phase::Response) response_at = ev.start;
    if (ev.phase == sim::Phase::AgreementCoord && first_ac < 0) first_ac = ev.start;
  }
  ASSERT_GE(response_at, 0);
  if (first_ac < 0) return;  // techniques without an AC phase (active, abcast)
  if (info.eager) {
    EXPECT_LE(first_ac, response_at) << info.name << ": AC must precede END when eager";
  } else {
    EXPECT_GT(first_ac, response_at) << info.name << ": lazy must reply before AC";
  }
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, PhasePatterns,
                         ::testing::ValuesIn(testing::all_kinds()),
                         testing::kind_param_name);

TEST(PhasePatterns, StrongTechniquesCoordinateBeforeResponding) {
  // Figure 15's claim: every strong-consistency combination has an SC
  // and/or AC step before END.
  for (const auto kind : testing::strong_kinds()) {
    Cluster cluster(testing::quiet_config(kind));
    const auto reply = cluster.run_op(0, op_put("k", "v"));
    ASSERT_TRUE(reply.ok) << technique_name(kind);
    const auto requests = cluster.sim().trace().requests();
    const auto pattern = cluster.sim().trace().pattern(requests.front());
    bool coord_before_end = false;
    for (const auto p : pattern) {
      if (p == sim::Phase::Response) break;
      if (p == sim::Phase::ServerCoord || p == sim::Phase::AgreementCoord) {
        coord_before_end = true;
      }
    }
    EXPECT_TRUE(coord_before_end)
        << technique_name(kind) << " claims strong consistency without SC/AC before END";
  }
}

}  // namespace
}  // namespace repli::core
