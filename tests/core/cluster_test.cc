// Basic end-to-end behaviour of every technique: writes take effect, reads
// observe them, replicas converge, read-your-writes at the coordinating
// copy, exactly-once under client retry.
#include "core/cluster.hh"

#include <gtest/gtest.h>

#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

class EveryTechnique : public ::testing::TestWithParam<TechniqueKind> {};

TEST_P(EveryTechnique, PutThenGetRoundTrips) {
  Cluster cluster(testing::quiet_config(GetParam()));
  const auto put = cluster.run_op(0, op_put("k", "v1"));
  ASSERT_TRUE(put.ok) << put.result;
  EXPECT_EQ(put.result, "ok");
  const auto get = cluster.run_op(0, op_get("k"));
  ASSERT_TRUE(get.ok);
  EXPECT_EQ(get.result, "v1") << "read-your-writes violated";
}

TEST_P(EveryTechnique, AllReplicasConvergeAfterSettle) {
  Cluster cluster(testing::quiet_config(GetParam()));
  for (int i = 0; i < 5; ++i) {
    const auto reply = cluster.run_op(0, op_put("key-" + std::to_string(i), "value"));
    ASSERT_TRUE(reply.ok) << reply.result;
  }
  cluster.settle(2 * sim::kSec);  // lazy propagation, trailing applies
  EXPECT_TRUE(cluster.converged()) << "replicas diverged";
  // And the data actually exists on every replica.
  for (int r = 0; r < cluster.replica_count(); ++r) {
    EXPECT_EQ(cluster.replica(r).storage().size(), 5u) << "replica " << r;
  }
}

TEST_P(EveryTechnique, CounterAccumulatesSequentially) {
  Cluster cluster(testing::quiet_config(GetParam()));
  for (int i = 1; i <= 4; ++i) {
    const auto reply = cluster.run_op(0, op_add("counter", 5));
    ASSERT_TRUE(reply.ok) << reply.result;
    EXPECT_EQ(reply.result, std::to_string(5 * i));
  }
}

TEST_P(EveryTechnique, MissingKeyReadsEmpty) {
  Cluster cluster(testing::quiet_config(GetParam()));
  const auto reply = cluster.run_op(0, op_get("never-written"));
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.result, "");
}

TEST_P(EveryTechnique, TwoClientsBothServed) {
  auto cfg = testing::quiet_config(GetParam(), 3, 2);
  Cluster cluster(cfg);
  const auto r0 = cluster.run_op(0, op_put("a", "from-0"));
  const auto r1 = cluster.run_op(1, op_put("b", "from-1"));
  ASSERT_TRUE(r0.ok) << r0.result;
  ASSERT_TRUE(r1.ok) << r1.result;
  cluster.settle(2 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
  const auto a = cluster.run_op(1, op_get("a"));
  EXPECT_TRUE(a.ok);
}

TEST_P(EveryTechnique, HistoryRecordsCompletedOps) {
  Cluster cluster(testing::quiet_config(GetParam()));
  cluster.run_op(0, op_put("k", "v"));
  cluster.run_op(0, op_get("k"));
  EXPECT_EQ(cluster.history().completed_ok(), 2u);
  EXPECT_EQ(cluster.history().ops().size(), 2u);
  EXPECT_GT(cluster.history().ops()[0].response, cluster.history().ops()[0].invoke);
}

TEST_P(EveryTechnique, SingleReplicaDegenerateCase) {
  Cluster cluster(testing::quiet_config(GetParam(), /*replicas=*/1));
  const auto put = cluster.run_op(0, op_put("solo", "x"));
  ASSERT_TRUE(put.ok) << put.result;
  const auto get = cluster.run_op(0, op_get("solo"));
  EXPECT_EQ(get.result, "x");
}

TEST_P(EveryTechnique, FiveReplicasStillCorrect) {
  Cluster cluster(testing::quiet_config(GetParam(), /*replicas=*/5));
  const auto put = cluster.run_op(0, op_put("k", "v"));
  ASSERT_TRUE(put.ok) << put.result;
  cluster.settle(2 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
  for (int r = 0; r < 5; ++r) {
    const auto rec = cluster.replica(r).storage().get("k");
    ASSERT_TRUE(rec.has_value()) << "replica " << r << " missing the write";
    EXPECT_EQ(rec->value, "v");
  }
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, EveryTechnique,
                         ::testing::ValuesIn(testing::all_kinds()),
                         testing::kind_param_name);

TEST(Cluster, MessageAccountingIsLive) {
  Cluster cluster(testing::quiet_config(TechniqueKind::Active));
  cluster.run_op(0, op_put("k", "v"));
  EXPECT_GT(cluster.sim().net().messages_sent(), 0);
  EXPECT_GT(cluster.sim().net().bytes_sent(), 0);
}

TEST(Cluster, ActiveWithConsensusAbcastAlsoWorks) {
  auto cfg = testing::quiet_config(TechniqueKind::Active);
  cfg.active_abcast_impl = 1;  // consensus-based ordering
  Cluster cluster(cfg);
  const auto put = cluster.run_op(0, op_put("k", "via-consensus"));
  ASSERT_TRUE(put.ok) << put.result;
  const auto get = cluster.run_op(0, op_get("k"));
  EXPECT_EQ(get.result, "via-consensus");
}

}  // namespace
}  // namespace repli::core
