#include "wire/codec.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/rng.hh"

namespace repli::wire {
namespace {

TEST(Codec, U64RoundTripBoundaries) {
  const std::uint64_t values[] = {0,       1,
                                  127,     128,
                                  16383,   16384,
                                  1u << 20, (1ull << 35) + 7,
                                  std::numeric_limits<std::uint64_t>::max()};
  Writer w;
  for (const auto v : values) w.put_u64(v);
  Reader r(w.bytes());
  for (const auto v : values) EXPECT_EQ(r.get_u64(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, I64ZigZagRoundTrip) {
  const std::int64_t values[] = {0, -1, 1, -64, 63, -65, 64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  Writer w;
  for (const auto v : values) w.put_i64(v);
  Reader r(w.bytes());
  for (const auto v : values) EXPECT_EQ(r.get_i64(), v);
}

TEST(Codec, SmallMagnitudesEncodeSmall) {
  Writer w;
  w.put_i64(-3);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Codec, U32OverflowRejected) {
  Writer w;
  w.put_u64(std::uint64_t{1} << 40);
  Reader r(w.bytes());
  EXPECT_THROW(r.get_u32(), WireError);
}

TEST(Codec, I32OverflowRejected) {
  Writer w;
  w.put_i64(std::int64_t{1} << 40);
  Reader r1(w.bytes());
  EXPECT_THROW(r1.get_i32(), WireError);

  Writer w2;
  w2.put_i64(-(std::int64_t{1} << 40));
  Reader r2(w2.bytes());
  EXPECT_THROW(r2.get_i32(), WireError);
}

TEST(Codec, I32BoundariesRoundTrip) {
  Writer w;
  w.put_i32(std::numeric_limits<std::int32_t>::min());
  w.put_i32(std::numeric_limits<std::int32_t>::max());
  Reader r(w.bytes());
  EXPECT_EQ(r.get_i32(), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(r.get_i32(), std::numeric_limits<std::int32_t>::max());
}

TEST(Codec, DoubleRoundTripIncludingSpecials) {
  const double values[] = {0.0, -0.0, 1.5, -3.25e300, 5e-324,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};
  Writer w;
  for (const auto v : values) w.put_double(v);
  Reader r(w.bytes());
  for (const auto v : values) EXPECT_EQ(r.get_double(), v);
}

TEST(Codec, NanRoundTripsAsNan) {
  Writer w;
  w.put_double(std::numeric_limits<double>::quiet_NaN());
  Reader r(w.bytes());
  EXPECT_TRUE(std::isnan(r.get_double()));
}

TEST(Codec, StringRoundTripWithEmbeddedNulAndUtf8) {
  Writer w;
  w.put_string("");
  w.put_string(std::string("a\0b", 3));
  w.put_string("héllo wörld");
  Reader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), std::string("a\0b", 3));
  EXPECT_EQ(r.get_string(), "héllo wörld");
}

TEST(Codec, BoolStrict) {
  Writer w;
  w.put_bool(true);
  w.put_bool(false);
  w.put_u64(2);  // not a valid bool
  Reader r(w.bytes());
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_THROW(r.get_bool(), WireError);
}

TEST(Codec, TruncatedVarintThrows) {
  const std::uint8_t bad[] = {0x80, 0x80};  // continuation bits with no end
  Reader r(bad);
  EXPECT_THROW(r.get_u64(), WireError);
}

TEST(Codec, OverlongVarintThrows) {
  const std::uint8_t bad[] = {0x80, 0x80, 0x80, 0x80, 0x80,
                              0x80, 0x80, 0x80, 0x80, 0x80, 0x01};  // 11 bytes
  Reader r(bad);
  EXPECT_THROW(r.get_u64(), WireError);
}

TEST(Codec, TruncatedStringThrows) {
  Writer w;
  w.put_u64(100);  // length prefix promising 100 bytes
  Reader r(w.bytes());
  EXPECT_THROW(r.get_string(), WireError);
}

TEST(Codec, TruncatedDoubleThrows) {
  const std::uint8_t bad[] = {1, 2, 3};
  Reader r(bad);
  EXPECT_THROW(r.get_double(), WireError);
}

TEST(Codec, EmptyReaderAtEnd) {
  Reader r(std::span<const std::uint8_t>{});
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW(r.get_u64(), WireError);
}

TEST(Codec, RandomizedU64RoundTrip) {
  util::Rng rng(1234);
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_u64() >> (rng.uniform(0, 63));
    Writer w;
    w.put_u64(v);
    Reader r(w.bytes());
    ASSERT_EQ(r.get_u64(), v);
    ASSERT_TRUE(r.at_end());
  }
}

TEST(Codec, RandomizedI64RoundTrip) {
  util::Rng rng(4321);
  for (int i = 0; i < 2000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_u64()) >> (rng.uniform(0, 63));
    Writer w;
    w.put_i64(v);
    Reader r(w.bytes());
    ASSERT_EQ(r.get_i64(), v);
  }
}

}  // namespace
}  // namespace repli::wire
