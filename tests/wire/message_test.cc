#include "wire/message.hh"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "util/rng.hh"

namespace repli::wire {
namespace {

enum class Color : std::int32_t { Red = 0, Green = 1, Blue = 2 };

struct Inner {
  std::int64_t x = 0;
  std::string tag;
  template <class Ar>
  void fields(Ar& ar) {
    ar(x);
    ar(tag);
  }
  bool operator==(const Inner&) const = default;
};

struct TestMsg : MessageBase<TestMsg> {
  static constexpr const char* kTypeName = "test.TestMsg";

  bool flag = false;
  std::int32_t small = 0;
  std::uint64_t big = 0;
  double ratio = 0.0;
  std::string name;
  Color color = Color::Red;
  std::vector<std::string> items;
  std::optional<std::int64_t> maybe;
  std::map<std::string, std::int64_t> table;
  Inner inner;
  std::vector<Inner> inners;

  template <class Ar>
  void fields(Ar& ar) {
    ar(flag);
    ar(small);
    ar(big);
    ar(ratio);
    ar(name);
    ar(color);
    ar(items);
    ar(maybe);
    ar(table);
    ar(inner);
    ar(inners);
  }
};

struct OtherMsg : MessageBase<OtherMsg> {
  static constexpr const char* kTypeName = "test.OtherMsg";
  std::int64_t v = 0;
  template <class Ar>
  void fields(Ar& ar) {
    ar(v);
  }
};

TestMsg sample() {
  TestMsg m;
  m.flag = true;
  m.small = -12345;
  m.big = 0xDEADBEEFCAFEull;
  m.ratio = 0.75;
  m.name = "replica-3";
  m.color = Color::Blue;
  m.items = {"a", "", "ccc"};
  m.maybe = -7;
  m.table = {{"x", 1}, {"y", -2}};
  m.inner = Inner{99, "nested"};
  m.inners = {Inner{1, "one"}, Inner{2, "two"}};
  return m;
}

TEST(Message, FullRoundTripThroughRegistry) {
  const TestMsg m = sample();
  const auto bytes = encode_message(m);
  const MessagePtr back = decode_message(bytes);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->type_name(), "test.TestMsg");
  const auto typed = message_cast<TestMsg>(back);
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->flag, m.flag);
  EXPECT_EQ(typed->small, m.small);
  EXPECT_EQ(typed->big, m.big);
  EXPECT_EQ(typed->ratio, m.ratio);
  EXPECT_EQ(typed->name, m.name);
  EXPECT_EQ(typed->color, m.color);
  EXPECT_EQ(typed->items, m.items);
  EXPECT_EQ(typed->maybe, m.maybe);
  EXPECT_EQ(typed->table, m.table);
  EXPECT_EQ(typed->inner, m.inner);
  EXPECT_EQ(typed->inners, m.inners);
}

TEST(Message, EmptyOptionalAndContainersRoundTrip) {
  TestMsg m;  // all defaults
  const auto bytes = encode_message(m);
  const auto typed = message_cast<TestMsg>(decode_message(bytes));
  ASSERT_NE(typed, nullptr);
  EXPECT_FALSE(typed->maybe.has_value());
  EXPECT_TRUE(typed->items.empty());
  EXPECT_TRUE(typed->table.empty());
}

TEST(Message, TypeIdsAreStableAndDistinct) {
  EXPECT_EQ(TestMsg::kTypeId, fnv1a("test.TestMsg"));
  EXPECT_NE(TestMsg::kTypeId, OtherMsg::kTypeId);
}

TEST(Message, MessageCastToWrongTypeIsNull) {
  OtherMsg m;
  m.v = 5;
  const auto back = decode_message(encode_message(m));
  EXPECT_EQ(message_cast<TestMsg>(back), nullptr);
  ASSERT_NE(message_cast<OtherMsg>(back), nullptr);
  EXPECT_EQ(message_cast<OtherMsg>(back)->v, 5);
}

TEST(Message, UnknownTypeIdRejected) {
  Writer w;
  w.put_u32(0xFFFFFFFFu);  // no such registration (with overwhelming odds)
  w.put_i64(1);
  EXPECT_THROW(decode_message(w.bytes()), WireError);
}

TEST(Message, TrailingBytesRejected) {
  OtherMsg m;
  auto bytes = encode_message(m);
  bytes.push_back(0);
  EXPECT_THROW(decode_message(bytes), WireError);
}

TEST(Message, TruncatedPayloadRejected) {
  TestMsg m = sample();
  auto bytes = encode_message(m);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_message(bytes), WireError);
}

TEST(Message, HugeVectorLengthPrefixRejectedWithoutAllocating) {
  OtherMsg::ensure_registered();
  TestMsg::ensure_registered();
  // Craft a TestMsg payload whose items-vector claims 2^40 entries.
  Writer w;
  w.put_u32(TestMsg::kTypeId);
  w.put_bool(false);        // flag
  w.put_i32(0);             // small
  w.put_u64(0);             // big
  w.put_double(0.0);        // ratio
  w.put_string("");         // name
  w.put_i64(0);             // color
  w.put_u64(1ull << 40);    // items length — absurd
  EXPECT_THROW(decode_message(w.bytes()), WireError);
}

TEST(Message, RandomizedRoundTrips) {
  util::Rng rng(777);
  for (int iter = 0; iter < 300; ++iter) {
    TestMsg m;
    m.flag = rng.bernoulli(0.5);
    m.small = static_cast<std::int32_t>(rng.uniform(-1000000, 1000000));
    m.big = rng.next_u64();
    m.ratio = rng.uniform01();
    const auto n = static_cast<std::size_t>(rng.uniform(0, 5));
    for (std::size_t i = 0; i < n; ++i) {
      m.items.push_back(std::string(static_cast<std::size_t>(rng.uniform(0, 20)), 'x'));
      m.inners.push_back(Inner{rng.uniform(-100, 100), "t" + std::to_string(i)});
    }
    if (rng.bernoulli(0.5)) m.maybe = rng.uniform(-5, 5);
    const auto typed = message_cast<TestMsg>(decode_message(encode_message(m)));
    ASSERT_NE(typed, nullptr);
    ASSERT_EQ(typed->items, m.items);
    ASSERT_EQ(typed->inners, m.inners);
    ASSERT_EQ(typed->maybe, m.maybe);
    ASSERT_EQ(typed->big, m.big);
  }
}

}  // namespace
}  // namespace repli::wire
