// The perf-regression gate and the flame subcommand: canned artifacts in,
// exit codes and folded stacks out. The flame golden test pins the folded
// format (stack lines, sorting, instant handling) against a hand-checked
// fixture so the tool and obs::write_folded cannot drift apart silently.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/report/report.hh"

namespace repli::tools {
namespace {

namespace fs = std::filesystem;

// A canned exported trace: node 0 runs a 100us request span containing a
// 30us db/exec.op (which itself nests a 10us wire.encode); node 1 has a
// free-standing 20us span and an instant. Events appear in (ts, id) order,
// exactly as the exporter emits them.
constexpr const char* kCannedTrace = R"({
  "displayTimeUnit": "ms",
  "traceEvents": [
    {"name": "process_name", "ph": "M", "pid": 0, "tid": 0, "args": {"name": "replikit"}},
    {"name": "core/EX", "cat": "core", "pid": 0, "tid": 0, "ts": 0, "ph": "X", "dur": 100,
     "args": {"request": "r-1"}},
    {"name": "db/exec.op", "cat": "db", "pid": 0, "tid": 0, "ts": 10, "ph": "X", "dur": 30,
     "args": {"request": "r-1"}},
    {"name": "wire.encode", "cat": "wire", "pid": 0, "tid": 0, "ts": 15, "ph": "X", "dur": 10},
    {"name": "gcs/deliver", "cat": "gcs", "pid": 0, "tid": 1, "ts": 5, "ph": "X", "dur": 20},
    {"name": "net/drop", "cat": "net", "pid": 0, "tid": 1, "ts": 12, "ph": "i", "s": "t"}
  ]
})";

// Hand-derived folded stacks: core/EX self = 100-30 = 70; db/exec.op self
// = 30-10 = 20; wire.encode self = 10; node 1's span is unnested; the
// instant contributes nothing. Lines sort lexicographically.
constexpr const char* kExpectedFolded =
    "node0;core/EX 70\n"
    "node0;core/EX;db/exec.op 20\n"
    "node0;core/EX;db/exec.op;wire.encode 10\n"
    "node1;gcs/deliver 20\n";

class GateCli : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each case as its own process, in parallel — the scratch
    // directory must be unique per test or a sibling's cleanup races us.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("replikit-gate-") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "baseline");
    fs::create_directories(dir_ / "fresh");
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_file(const fs::path& path, const std::string& text) {
    std::ofstream out(path, std::ios::trunc);
    out << text;
    ASSERT_TRUE(out.good()) << path;
  }

  int run_report(std::vector<std::string> args) {
    std::vector<char*> argv;
    args.insert(args.begin(), "replikit-report");
    for (auto& arg : args) argv.push_back(arg.data());
    return report_main(static_cast<int>(argv.size()), argv.data());
  }

  std::string slurp(const fs::path& path) {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  /// One workload row with the given throughput/p95/msgs-per-op.
  static std::string bench_doc(double throughput, double p95, double msgs) {
    std::ostringstream os;
    os << R"({"bench": "gate_probe", "schema_version": 2,)"
       << R"( "provenance": {"git_sha": "cafe123"}, "rows": [{)"
       << R"("technique": "active", "replicas": 3, "seed": 7,)"
       << R"( "ops_ok": 100, "throughput_ops_per_s": )" << throughput
       << R"(, "latency_us": {"mean": 500, "p50": 450, "p95": )" << p95
       << R"(, "p99": 900}, "msgs_per_op": )" << msgs
       << R"(, "bytes_per_op": 2000, "converged": true}]})";
    return os.str();
  }

  static std::string prof_doc(double allocs_per_op) {
    std::ostringstream os;
    os << R"({"prof": "gate_probe", "schema_version": 1,)"
       << R"( "provenance": {"git_sha": "cafe123"}, "enabled": true, "ops": 100,)"
       << R"( "centers": [{"center": "wire.encode", "calls": 400, "self_ns": 80000,)"
       << R"( "total_ns": 80000, "allocs": 800, "alloc_bytes": 64000,)"
       << R"( "calls_per_op": 4.0, "self_ns_per_op": 800.0, "allocs_per_op": )"
       << allocs_per_op << R"(, "alloc_bytes_per_op": 640.0}]})";
    return os.str();
  }

  fs::path dir_;
};

TEST_F(GateCli, IdenticalArtifactsPass) {
  write_file(dir_ / "baseline" / "BENCH_gate_probe.json", bench_doc(4000, 800, 6.0));
  write_file(dir_ / "fresh" / "BENCH_gate_probe.json", bench_doc(4000, 800, 6.0));
  EXPECT_EQ(run_report({"--check", "--baseline", (dir_ / "baseline").string(),
                        (dir_ / "fresh").string()}),
            0);
}

TEST_F(GateCli, ThroughputDropOverThresholdExitsThree) {
  write_file(dir_ / "baseline" / "BENCH_gate_probe.json", bench_doc(4000, 800, 6.0));
  // 20% throughput drop > the 15% tolerance.
  write_file(dir_ / "fresh" / "BENCH_gate_probe.json", bench_doc(3200, 800, 6.0));
  EXPECT_EQ(run_report({"--check", "--baseline", (dir_ / "baseline").string(),
                        (dir_ / "fresh").string()}),
            3);
}

TEST_F(GateCli, SmallDriftWithinToleranceStillPasses) {
  write_file(dir_ / "baseline" / "BENCH_gate_probe.json", bench_doc(4000, 800, 6.0));
  // 5% worse everywhere: inside every window.
  write_file(dir_ / "fresh" / "BENCH_gate_probe.json", bench_doc(3800, 840, 6.3));
  EXPECT_EQ(run_report({"--check", "--baseline", (dir_ / "baseline").string(),
                        (dir_ / "fresh").string()}),
            0);
}

TEST_F(GateCli, MsgsPerOpGrowthTripsItsTighterThreshold) {
  write_file(dir_ / "baseline" / "BENCH_gate_probe.json", bench_doc(4000, 800, 6.0));
  // +12% msgs/op > the 10% window, though throughput/latency are clean.
  write_file(dir_ / "fresh" / "BENCH_gate_probe.json", bench_doc(4000, 800, 6.72));
  EXPECT_EQ(run_report({"--check", "--baseline", (dir_ / "baseline").string(),
                        (dir_ / "fresh").string()}),
            3);
}

TEST_F(GateCli, MissingFreshArtifactIsARegression) {
  write_file(dir_ / "baseline" / "BENCH_gate_probe.json", bench_doc(4000, 800, 6.0));
  write_file(dir_ / "fresh" / "BENCH_other.json",
             R"({"bench": "other", "schema_version": 2, "rows": []})");
  EXPECT_EQ(run_report({"--check", "--baseline", (dir_ / "baseline").string(),
                        (dir_ / "fresh").string()}),
            3);
}

TEST_F(GateCli, ProfAllocGrowthTripsTheGate) {
  write_file(dir_ / "baseline" / "PROF_gate_probe.json", prof_doc(8.0));
  write_file(dir_ / "fresh" / "PROF_gate_probe.json", prof_doc(8.0));
  EXPECT_EQ(run_report({"--check", "--baseline", (dir_ / "baseline").string(),
                        (dir_ / "fresh").string()}),
            0);
  // +50% allocations per op > the 25% window.
  write_file(dir_ / "fresh" / "PROF_gate_probe.json", prof_doc(12.0));
  EXPECT_EQ(run_report({"--check", "--baseline", (dir_ / "baseline").string(),
                        (dir_ / "fresh").string()}),
            3);
}

TEST_F(GateCli, AllocBudgetWithinCeilingPasses) {
  write_file(dir_ / "baseline" / "PROF_gate_probe.json", prof_doc(8.0));
  write_file(dir_ / "fresh" / "PROF_gate_probe.json", prof_doc(8.0));
  EXPECT_EQ(run_report({"--check", "--baseline", (dir_ / "baseline").string(),
                        "--alloc-budget", "wire.encode=10", (dir_ / "fresh").string()}),
            0);
}

TEST_F(GateCli, AllocBudgetExceededExitsThree) {
  // The relative gate is clean (fresh == baseline) but the absolute budget
  // is tighter — it must trip independently of baseline drift.
  write_file(dir_ / "baseline" / "PROF_gate_probe.json", prof_doc(8.0));
  write_file(dir_ / "fresh" / "PROF_gate_probe.json", prof_doc(8.0));
  EXPECT_EQ(run_report({"--check", "--baseline", (dir_ / "baseline").string(),
                        "--alloc-budget", "wire.encode=5", (dir_ / "fresh").string()}),
            3);
}

TEST_F(GateCli, AllocBudgetOnMissingCenterIsARegression) {
  // A budget naming a center that no fresh profile measured must fail
  // loudly, not pass vacuously.
  write_file(dir_ / "baseline" / "PROF_gate_probe.json", prof_doc(8.0));
  write_file(dir_ / "fresh" / "PROF_gate_probe.json", prof_doc(8.0));
  EXPECT_EQ(run_report({"--check", "--baseline", (dir_ / "baseline").string(),
                        "--alloc-budget", "no.such.center=5", (dir_ / "fresh").string()}),
            3);
}

TEST_F(GateCli, AllocBudgetMalformedOrWithoutCheckIsAUsageError) {
  write_file(dir_ / "fresh" / "PROF_gate_probe.json", prof_doc(8.0));
  EXPECT_EQ(run_report({"--check", "--baseline", (dir_ / "baseline").string(),
                        "--alloc-budget", "wire.encode", (dir_ / "fresh").string()}),
            1);  // no "=N"
  EXPECT_EQ(run_report({"--alloc-budget", "wire.encode=5", (dir_ / "fresh").string()}), 1);
}

TEST_F(GateCli, RebaselineInstallsValidatedArtifacts) {
  write_file(dir_ / "fresh" / "BENCH_gate_probe.json", bench_doc(4000, 800, 6.0));
  write_file(dir_ / "fresh" / "PROF_gate_probe.json", prof_doc(8.0));
  EXPECT_EQ(run_report({"--rebaseline", "--baseline", (dir_ / "baseline").string(),
                        (dir_ / "fresh").string()}),
            0);
  EXPECT_EQ(slurp(dir_ / "baseline" / "BENCH_gate_probe.json"), bench_doc(4000, 800, 6.0));
  EXPECT_EQ(slurp(dir_ / "baseline" / "PROF_gate_probe.json"), prof_doc(8.0));
  // The installed baselines gate the very artifacts they came from.
  EXPECT_EQ(run_report({"--check", "--baseline", (dir_ / "baseline").string(),
                        (dir_ / "fresh").string()}),
            0);
}

TEST_F(GateCli, RebaselineRefusesMalformedArtifacts) {
  write_file(dir_ / "fresh" / "BENCH_gate_probe.json", R"({"bench": "truncated)");
  EXPECT_EQ(run_report({"--rebaseline", "--baseline", (dir_ / "baseline").string(),
                        (dir_ / "fresh").string()}),
            1);
  EXPECT_FALSE(fs::exists(dir_ / "baseline" / "BENCH_gate_probe.json"));
}

TEST_F(GateCli, RebaselineRefusesArtifactsWithoutProvenance) {
  write_file(dir_ / "fresh" / "BENCH_gate_probe.json",
             R"({"bench": "gate_probe", "schema_version": 2, "rows": []})");
  EXPECT_EQ(run_report({"--rebaseline", "--baseline", (dir_ / "baseline").string(),
                        (dir_ / "fresh").string()}),
            1);
  EXPECT_FALSE(fs::exists(dir_ / "baseline" / "BENCH_gate_probe.json"));
}

TEST_F(GateCli, EmptyBaselineDirReportsNoInputs) {
  write_file(dir_ / "fresh" / "BENCH_gate_probe.json", bench_doc(4000, 800, 6.0));
  EXPECT_EQ(run_report({"--check", "--baseline", (dir_ / "baseline").string(),
                        (dir_ / "fresh").string()}),
            2);
}

TEST_F(GateCli, CheckWithoutBaselineIsAUsageError) {
  EXPECT_EQ(run_report({"--check", (dir_ / "fresh").string()}), 1);
}

// -- check_against_baseline unit level ---------------------------------------

TEST(CheckAgainstBaseline, ConvergedMustNotRegress) {
  const auto base = parse_bench_json(
      R"({"bench": "b", "rows": [{"technique": "active", "seed": 1, "converged": true}]})");
  const auto fresh = parse_bench_json(
      R"({"bench": "b", "rows": [{"technique": "active", "seed": 1, "converged": false}]})");
  ASSERT_TRUE(base.has_value());
  ASSERT_TRUE(fresh.has_value());
  ReportInputs baseline_in;
  baseline_in.benches.push_back(*base);
  ReportInputs fresh_in;
  fresh_in.benches.push_back(*fresh);
  const auto result = check_against_baseline(baseline_in, fresh_in);
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions.front().metric, "converged");
}

TEST(CheckAgainstBaseline, RowsMatchBySweepIdentityNotPosition) {
  // Baseline lists write_ratio 0.1 then 0.9; fresh lists them reversed
  // with identical numbers — identity matching must pair them correctly.
  const char* fmt =
      R"({"bench": "b", "rows": [)"
      R"({"technique": "active", "seed": 1, "write_ratio": %s, "throughput_ops_per_s": %s},)"
      R"({"technique": "active", "seed": 1, "write_ratio": %s, "throughput_ops_per_s": %s}]})";
  char base_json[512];
  std::snprintf(base_json, sizeof base_json, fmt, "0.1", "4000", "0.9", "2000");
  char fresh_json[512];
  std::snprintf(fresh_json, sizeof fresh_json, fmt, "0.9", "2000", "0.1", "4000");
  const auto base = parse_bench_json(base_json);
  const auto fresh = parse_bench_json(fresh_json);
  ASSERT_TRUE(base.has_value());
  ASSERT_TRUE(fresh.has_value());
  ReportInputs baseline_in;
  baseline_in.benches.push_back(*base);
  ReportInputs fresh_in;
  fresh_in.benches.push_back(*fresh);
  EXPECT_TRUE(check_against_baseline(baseline_in, fresh_in).ok());
}

// -- flame subcommand --------------------------------------------------------

TEST_F(GateCli, FlameMatchesTheGoldenFoldedStacks) {
  const auto trace_path = dir_ / "TRACE_golden.json";
  const auto out_path = dir_ / "golden.folded";
  write_file(trace_path, kCannedTrace);
  ASSERT_EQ(run_report({"flame", trace_path.string(), "-o", out_path.string()}), 0);
  EXPECT_EQ(slurp(out_path), kExpectedFolded);
}

TEST_F(GateCli, FlameRejectsMalformedTraces) {
  const auto trace_path = dir_ / "TRACE_bad.json";
  write_file(trace_path, "{not json");
  EXPECT_EQ(run_report({"flame", trace_path.string()}), 1);
}

TEST(WriteFoldedFromTrace, SiblingsDoNotNest) {
  // Two back-to-back spans on one node: [0,10) and [10,20). The second
  // starts exactly when the first ends; the tracer's rule (pop enclosers
  // ending *before* my end) keeps them siblings.
  TraceData trace;
  trace.spans.push_back({0, 0, "a", "", 0, 10, false});
  trace.spans.push_back({0, 0, "b", "", 10, 10, false});
  std::ostringstream os;
  write_folded_from_trace(trace, os);
  EXPECT_EQ(os.str(),
            "node0;a 10\n"
            "node0;b 10\n");
}

TEST(ParseProfJson, ReadsNameShaAndCenters) {
  const auto prof = parse_prof_json(
      R"({"prof": "x", "schema_version": 1, "provenance": {"git_sha": "abc"},)"
      R"( "enabled": true, "ops": 10, "centers": [{"center": "db.lock", "calls": 5}]})");
  ASSERT_TRUE(prof.has_value());
  EXPECT_EQ(prof->name, "x");
  EXPECT_EQ(prof->git_sha, "abc");
  const auto* centers = prof->doc.find("centers");
  ASSERT_NE(centers, nullptr);
  ASSERT_EQ(centers->array.size(), 1u);
}

TEST(ParseProfJson, RejectsDocumentsWithoutCenters) {
  EXPECT_FALSE(parse_prof_json(R"({"prof": "x"})").has_value());
  EXPECT_FALSE(parse_prof_json("[1, 2]").has_value());
}

}  // namespace
}  // namespace repli::tools
