// replikit-report end to end: drive the real bench harness (run_workload
// with REPLI_TRACE on) into a scratch directory, run the report CLI over
// the artifacts, and check the markdown reproduces the paper's measured
// phase patterns and the health tables. Plus parser edge cases.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench/common.hh"
#include "tools/report/report.hh"

namespace repli::tools {
namespace {

namespace fs = std::filesystem;

class ReportEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process scratch: gtest_discover_tests runs each TEST as its own
    // ctest entry, so under `ctest -j` two tests of this fixture race on a
    // shared directory name.
    dir_ = fs::path(::testing::TempDir()) /
           ("replikit-report-test-" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ::setenv("REPLI_BENCH_DIR", dir_.c_str(), 1);
    ::setenv("REPLI_TRACE", "1", 1);
    ::setenv("REPLI_LOG", "off", 1);
  }
  void TearDown() override {
    ::unsetenv("REPLI_BENCH_DIR");
    ::unsetenv("REPLI_TRACE");
    fs::remove_all(dir_);
  }

  int run_report(std::vector<std::string> args) {
    std::vector<char*> argv;
    args.insert(args.begin(), "replikit-report");
    for (auto& arg : args) argv.push_back(arg.data());
    return report_main(static_cast<int>(argv.size()), argv.data());
  }

  fs::path dir_;
};

TEST_F(ReportEndToEnd, ReproducesPaperPatternsFromBenchArtifacts) {
  bench::WorkloadParams params;
  params.clients = 1;
  params.ops_per_client = 5;
  params.write_ratio = 1.0;
  std::vector<bench::RunStats> rows;
  rows.push_back(bench::run_workload(core::TechniqueKind::Active, params));
  rows.push_back(bench::run_workload(core::TechniqueKind::EagerPrimary, params));
  ASSERT_TRUE(bench::write_bench_json("report_test", rows));

  const auto out = dir_ / "REPORT.md";
  ASSERT_EQ(run_report({"-o", out.string(), dir_.string()}), 0);

  std::ifstream in(out);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string report = buf.str();

  EXPECT_NE(report.find("# replikit run report"), std::string::npos);
  EXPECT_NE(report.find("## Provenance"), std::string::npos);
  EXPECT_NE(report.find("report_test"), std::string::npos);
  // The acceptance bar: the report rebuilds Fig. 2 and Fig. 7 phase orders
  // from measured spans, not from the paper's table.
  EXPECT_NE(report.find("measured pattern `RE SC EX END`"), std::string::npos) << report;
  EXPECT_NE(report.find("measured pattern `RE EX AC END`"), std::string::npos) << report;
  EXPECT_EQ(report.find("DIFFERS from the paper figure"), std::string::npos);
  EXPECT_NE(report.find("## Replication health"), std::string::npos);
  EXPECT_NE(report.find("**Staleness**"), std::string::npos);
  EXPECT_NE(report.find("## Bench results"), std::string::npos);
  EXPECT_NE(report.find("| active |"), std::string::npos);
  EXPECT_NE(report.find("legend: RE request"), std::string::npos);
}

TEST_F(ReportEndToEnd, FailsCleanlyOnEmptyAndMissingInputs) {
  EXPECT_EQ(run_report({dir_.string()}), 2);  // directory with no artifacts
  EXPECT_EQ(run_report({(dir_ / "nope").string()}), 1);
  EXPECT_EQ(run_report({}), 1);  // usage error
}

TEST_F(ReportEndToEnd, MalformedArtifactIsAnErrorButOthersStillReport) {
  {
    std::ofstream bad(dir_ / "TRACE_broken-1.json");
    bad << "{not json";
  }
  {
    std::ofstream good(dir_ / "BENCH_ok.json");
    good << R"({"bench":"ok","schema_version":2,"provenance":{"git_sha":"abc"},"rows":[]})";
  }
  const auto out = dir_ / "REPORT.md";
  // Truncated/corrupt artifacts get the dedicated exit code, distinct from
  // plain I/O errors (1) and empty input (2) — CI can tell them apart.
  EXPECT_EQ(run_report({"-o", out.string(), dir_.string()}), 4);
  std::ifstream in(out);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("`abc`"), std::string::npos) << "good input dropped";
}

TEST_F(ReportEndToEnd, TruncatedArtifactsYieldExitFourEverywhere) {
  // A bench report cut off mid-write (the classic crashed-run artifact).
  {
    std::ofstream bad(dir_ / "BENCH_cut.json");
    bad << R"({"bench":"cut","schema_version":2,"rows":[{"technique":"acti)";
  }
  {
    std::ofstream bad(dir_ / "CRIT_cut-1.json");
    bad << R"({"crit":"cut-1","schema_version":1,"txns":[)";
  }
  EXPECT_EQ(run_report({"-o", (dir_ / "REPORT.md").string(), dir_.string()}), 4);
  EXPECT_EQ(run_report({"waterfall", "-o", (dir_ / "WF.md").string(), dir_.string()}), 4);

  // A structurally valid CRIT document missing its summary is also corrupt
  // (parse_crit_json demands the sections the waterfall renders from).
  {
    std::ofstream bad(dir_ / "CRIT_cut-1.json");
    bad << R"({"crit":"cut-1","schema_version":1,"txns":[]})";
  }
  fs::remove(dir_ / "BENCH_cut.json");
  EXPECT_EQ(run_report({"waterfall", (dir_ / "CRIT_cut-1.json").string()}), 4);
}

TEST_F(ReportEndToEnd, WaterfallNeedsCritInputs) {
  EXPECT_EQ(run_report({"waterfall", dir_.string()}), 2);  // nothing to render
  {
    std::ofstream good(dir_ / "CRIT_mini-1.json");
    good << R"({"crit":"mini-1","schema_version":1,
      "txns":[{"request":"c0-0","trace":1,"client":3,"ok":true,
               "start_us":0,"end_us":100,"total_us":100,"attributed_us":100,"hops":1,
               "segments":[{"kind":"net_transit","node":0,"start_us":0,"dur_us":100}]}],
      "summary":{"txns":1,"total_us":100,"attributed_us":100,"coverage":1.0,
        "segments":[{"kind":"net_transit","txns_touched":1,"p50_us":100,"p95_us":100,
                     "p99_us":100,"mean_us":100,"max_us":100}],
        "tail":[{"kind":"net_transit","p50_us":100,"p99_us":100,"delta_us":0}]}})";
  }
  const auto out = dir_ / "WF.md";
  ASSERT_EQ(run_report({"waterfall", "-o", out.string(), dir_.string()}), 0);
  std::ifstream in(out);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("# replikit latency waterfalls"), std::string::npos);
  EXPECT_NE(buf.str().find("net_transit"), std::string::npos);
  EXPECT_NE(buf.str().find("c0-0"), std::string::npos) << "slowest-txn path missing";
}

TEST(ReportParsers, TracePatternOrdersPhasesByFirstStart) {
  TraceData trace;
  trace.tag = "active-1";
  const auto span = [](std::int64_t node, std::string name, double ts, double dur) {
    TraceSpan s;
    s.node = node;
    s.name = std::move(name);
    s.request = "r1";
    s.trace = 7;
    s.ts = ts;
    s.dur = dur;
    return s;
  };
  trace.spans.push_back(span(3, "core/RE", 0, 10));
  trace.spans.push_back(span(0, "core/SC", 10, 30));
  trace.spans.push_back(span(1, "core/EX", 50, 20));
  trace.spans.push_back(span(0, "core/EX", 45, 20));  // earliest EX wins
  trace.spans.push_back(span(0, "core/ac.ship", 60, 5));  // sub-phase: not a phase
  trace.spans.push_back(span(3, "core/END", 80, 1));
  EXPECT_EQ(trace_pattern(trace, "r1"), "RE SC EX END");
  EXPECT_EQ(trace_requests(trace), std::vector<std::string>{"r1"});
  EXPECT_EQ(trace_nodes(trace, "r1"), (std::vector<std::int64_t>{0, 1, 3}));
}

TEST(ReportParsers, ChromeTraceRoundTripMatchesFlowHalves) {
  const std::string text = R"({"displayTimeUnit":"ms","traceEvents":[
    {"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"replikit"}},
    {"name":"core/EX","cat":"core","pid":0,"tid":1,"ts":5,"ph":"X","dur":10,
     "args":{"request":"r1","trace":4}},
    {"name":"w.Msg","cat":"net","ph":"s","id":1,"pid":0,"tid":0,"ts":1,
     "args":{"trace":4,"lamport":1}},
    {"name":"w.Msg","cat":"net","ph":"f","bp":"e","id":1,"pid":0,"tid":1,"ts":3,
     "args":{"trace":4,"lamport":2}},
    {"name":"orphan","cat":"net","ph":"f","bp":"e","id":9,"pid":0,"tid":1,"ts":3,
     "args":{"lamport":2}}
  ]})";
  const auto trace = parse_chrome_trace(text, "t");
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->spans.size(), 1u);
  EXPECT_EQ(trace->spans.front().trace, 4u);
  ASSERT_EQ(trace->flows.size(), 1u) << "orphan flow finish must be dropped";
  EXPECT_EQ(trace->flows.front().from, 0);
  EXPECT_EQ(trace->flows.front().to, 1);
  EXPECT_EQ(trace->flows.front().trace, 4u);

  EXPECT_FALSE(parse_chrome_trace("{}").has_value());
  EXPECT_FALSE(parse_chrome_trace("[1,2]").has_value());
}

TEST(ReportParsers, StatsNdjsonRejectsMalformedLines) {
  const auto ok = parse_stats_ndjson(
      "{\"metric\":\"monitor.aborts\",\"type\":\"counter\",\"labels\":{\"cause\":"
      "\"deadlock\"},\"value\":2}\n\n"
      "{\"metric\":\"monitor.failover_us\",\"type\":\"histogram\",\"count\":1,"
      "\"mean\":5.0,\"min\":5.0,\"max\":5.0,\"p50\":5.0,\"p95\":5.0,\"p99\":5.0}\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->metrics.size(), 2u);
  EXPECT_FALSE(parse_stats_ndjson("{\"metric\":\"x\"}\nnot json\n").has_value());
}

}  // namespace
}  // namespace repli::tools
