// The waterfall subcommand, pinned two ways: a golden-file test over canned
// CRIT artifacts (the rendering itself must never drift — ASCII bars, table
// layout, number formatting are all part of the artifact contract), and a
// byte-stability test over real same-seed bench runs (the whole pipeline —
// simulator, tracer, critical-path extraction, JSON writer, renderer — must
// be deterministic end to end).
#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench/common.hh"
#include "tools/report/report.hh"

namespace repli::tools {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const fs::path& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

class WaterfallCli : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process scratch: under `ctest -j` each TEST is its own process and
    // a shared directory name races across concurrently running tests.
    dir_ = fs::path(::testing::TempDir()) /
           ("replikit-waterfall-test-" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run_report(std::vector<std::string> args) {
    std::vector<char*> argv;
    args.insert(args.begin(), "replikit-report");
    for (auto& arg : args) argv.push_back(arg.data());
    return report_main(static_cast<int>(argv.size()), argv.data());
  }

  fs::path dir_;
};

// Two canned artifacts: one clean single-segment run (also exercising the
// technique lookup via the `active-1` tag) and one with a queue-dominated
// tail, an unattributed remainder, and a failed transaction that must stay
// out of every percentile.
constexpr std::string_view kCritActive = R"({"crit":"active-1","schema_version":1,
 "txns":[
  {"request":"c2-0","trace":1,"client":2,"ok":true,"start_us":0,"end_us":400,
   "total_us":400,"attributed_us":400,"hops":2,"segments":[
    {"kind":"net_transit","node":2,"start_us":0,"dur_us":150,"detail":"gcs.LinkData"},
    {"kind":"storage_exec","node":0,"start_us":150,"dur_us":100,"detail":"db/exec.op"},
    {"kind":"net_transit","node":0,"start_us":250,"dur_us":150,"detail":"core.ClientReply"}]},
  {"request":"c2-1","trace":2,"client":2,"ok":true,"start_us":1000,"end_us":1300,
   "total_us":300,"attributed_us":300,"hops":2,"segments":[
    {"kind":"net_transit","node":2,"start_us":1000,"dur_us":100,"detail":"gcs.LinkData"},
    {"kind":"storage_exec","node":0,"start_us":1100,"dur_us":100,"detail":"db/exec.op"},
    {"kind":"net_transit","node":0,"start_us":1200,"dur_us":100,"detail":"core.ClientReply"}]}],
 "summary":{"txns":2,"total_us":700,"attributed_us":700,"coverage":1.0,
  "segments":[
   {"kind":"net_transit","txns_touched":2,"p50_us":250,"p95_us":300,"p99_us":300,
    "mean_us":250.0,"max_us":300},
   {"kind":"storage_exec","txns_touched":2,"p50_us":100,"p95_us":100,"p99_us":100,
    "mean_us":100.0,"max_us":100}],
  "tail":[
   {"kind":"net_transit","p50_us":250,"p99_us":300,"delta_us":50},
   {"kind":"storage_exec","p50_us":100,"p99_us":100,"delta_us":0}]}})";

constexpr std::string_view kCritQueue = R"({"crit":"queued","schema_version":1,
 "txns":[
  {"request":"c0-0","trace":3,"client":0,"ok":true,"start_us":0,"end_us":2000,
   "total_us":2000,"attributed_us":1900,"hops":1,"segments":[
    {"kind":"net_transit","node":0,"start_us":0,"dur_us":200,"detail":"core.ClientRequest"},
    {"kind":"submit_wait","node":1,"start_us":200,"dur_us":1500,"detail":"core/queue.wait"},
    {"kind":"storage_exec","node":1,"start_us":1700,"dur_us":200,"detail":"db/exec.op"},
    {"kind":"unattributed","node":-1,"start_us":1900,"dur_us":100}]},
  {"request":"c0-1","trace":4,"client":0,"ok":false,"start_us":3000,"end_us":9000,
   "total_us":6000,"attributed_us":0,"hops":0,"segments":[
    {"kind":"unattributed","node":-1,"start_us":3000,"dur_us":6000}]}],
 "summary":{"txns":1,"total_us":2000,"attributed_us":1900,"coverage":0.95,
  "segments":[
   {"kind":"submit_wait","txns_touched":1,"p50_us":1500,"p95_us":1500,"p99_us":1500,
    "mean_us":1500.0,"max_us":1500},
   {"kind":"net_transit","txns_touched":1,"p50_us":200,"p95_us":200,"p99_us":200,
    "mean_us":200.0,"max_us":200},
   {"kind":"storage_exec","txns_touched":1,"p50_us":200,"p95_us":200,"p99_us":200,
    "mean_us":200.0,"max_us":200},
   {"kind":"unattributed","txns_touched":1,"p50_us":100,"p95_us":100,"p99_us":100,
    "mean_us":100.0,"max_us":100}],
  "tail":[
   {"kind":"submit_wait","p50_us":1500,"p99_us":1500,"delta_us":0}]}})";

TEST_F(WaterfallCli, MatchesTheGoldenRendering) {
  write_file(dir_ / "CRIT_active-1.json", kCritActive);
  write_file(dir_ / "CRIT_queued.json", kCritQueue);
  const auto out = dir_ / "WF.md";
  ASSERT_EQ(run_report({"waterfall", "-o", out.string(), dir_.string()}), 0);
  const auto golden_path =
      fs::path(REPLI_SOURCE_DIR) / "tests" / "tools" / "goldens" / "waterfall.md";
  const auto golden = slurp(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << golden_path
                               << " — regenerate with: replikit-report waterfall DIR";
  EXPECT_EQ(slurp(out), golden)
      << "waterfall rendering drifted; if intentional, refresh the golden file";
}

TEST_F(WaterfallCli, ByteStableAcrossSameSeedReruns) {
  bench::WorkloadParams params;
  params.clients = 2;
  params.ops_per_client = 10;
  params.seed = 17;
  ::setenv("REPLI_TRACE", "1", 1);
  ::setenv("REPLI_LOG", "off", 1);
  std::array<std::string, 2> rendered;
  for (int run = 0; run < 2; ++run) {
    const auto run_dir = dir_ / ("run" + std::to_string(run));
    fs::create_directories(run_dir);
    ::setenv("REPLI_BENCH_DIR", run_dir.c_str(), 1);
    bench::run_workload(core::TechniqueKind::EagerPrimary, params);
    // The bench tags artifacts with a process-wide run counter; normalize
    // the filename so the two renders are comparable byte for byte.
    fs::path crit;
    for (const auto& entry : fs::directory_iterator(run_dir)) {
      if (entry.path().filename().string().rfind("CRIT_", 0) == 0) crit = entry.path();
    }
    ASSERT_FALSE(crit.empty()) << "bench emitted no CRIT artifact into " << run_dir;
    const auto normalized = run_dir / "CRIT_run.json";
    fs::rename(crit, normalized);
    const auto out = run_dir / "WF.md";
    ASSERT_EQ(run_report({"waterfall", normalized.string(), "-o", out.string()}), 0);
    rendered[static_cast<std::size_t>(run)] = slurp(out);
  }
  ::unsetenv("REPLI_BENCH_DIR");
  ::unsetenv("REPLI_TRACE");
  ASSERT_FALSE(rendered[0].empty());
  EXPECT_EQ(rendered[0], rendered[1]) << "same seed must render identical waterfalls";
}

}  // namespace
}  // namespace repli::tools
