# Empty dependencies file for fig02_active.
# This may be replaced when dependencies are built.
