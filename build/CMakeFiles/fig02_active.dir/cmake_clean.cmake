file(REMOVE_RECURSE
  "CMakeFiles/fig02_active.dir/bench/fig02_active.cc.o"
  "CMakeFiles/fig02_active.dir/bench/fig02_active.cc.o.d"
  "bench/fig02_active"
  "bench/fig02_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
