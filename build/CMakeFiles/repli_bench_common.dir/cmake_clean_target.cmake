file(REMOVE_RECURSE
  "librepli_bench_common.a"
)
