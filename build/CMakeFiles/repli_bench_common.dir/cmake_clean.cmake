file(REMOVE_RECURSE
  "CMakeFiles/repli_bench_common.dir/bench/common.cc.o"
  "CMakeFiles/repli_bench_common.dir/bench/common.cc.o.d"
  "librepli_bench_common.a"
  "librepli_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
