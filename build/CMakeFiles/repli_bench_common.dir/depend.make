# Empty dependencies file for repli_bench_common.
# This may be replaced when dependencies are built.
