file(REMOVE_RECURSE
  "CMakeFiles/perf_latency_scaling.dir/bench/perf_latency_scaling.cc.o"
  "CMakeFiles/perf_latency_scaling.dir/bench/perf_latency_scaling.cc.o.d"
  "bench/perf_latency_scaling"
  "bench/perf_latency_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_latency_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
