# Empty compiler generated dependencies file for perf_latency_scaling.
# This may be replaced when dependencies are built.
