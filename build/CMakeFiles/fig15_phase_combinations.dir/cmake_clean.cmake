file(REMOVE_RECURSE
  "CMakeFiles/fig15_phase_combinations.dir/bench/fig15_phase_combinations.cc.o"
  "CMakeFiles/fig15_phase_combinations.dir/bench/fig15_phase_combinations.cc.o.d"
  "bench/fig15_phase_combinations"
  "bench/fig15_phase_combinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_phase_combinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
