# Empty compiler generated dependencies file for fig15_phase_combinations.
# This may be replaced when dependencies are built.
