# Empty dependencies file for fig09_eager_abcast.
# This may be replaced when dependencies are built.
