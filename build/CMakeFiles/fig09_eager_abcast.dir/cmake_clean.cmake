file(REMOVE_RECURSE
  "CMakeFiles/fig09_eager_abcast.dir/bench/fig09_eager_abcast.cc.o"
  "CMakeFiles/fig09_eager_abcast.dir/bench/fig09_eager_abcast.cc.o.d"
  "bench/fig09_eager_abcast"
  "bench/fig09_eager_abcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_eager_abcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
