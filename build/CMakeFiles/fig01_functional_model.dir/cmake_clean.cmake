file(REMOVE_RECURSE
  "CMakeFiles/fig01_functional_model.dir/bench/fig01_functional_model.cc.o"
  "CMakeFiles/fig01_functional_model.dir/bench/fig01_functional_model.cc.o.d"
  "bench/fig01_functional_model"
  "bench/fig01_functional_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_functional_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
