# Empty dependencies file for fig01_functional_model.
# This may be replaced when dependencies are built.
