file(REMOVE_RECURSE
  "CMakeFiles/fig04_semi_active.dir/bench/fig04_semi_active.cc.o"
  "CMakeFiles/fig04_semi_active.dir/bench/fig04_semi_active.cc.o.d"
  "bench/fig04_semi_active"
  "bench/fig04_semi_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_semi_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
