# Empty compiler generated dependencies file for fig04_semi_active.
# This may be replaced when dependencies are built.
