# Empty dependencies file for perf_failures.
# This may be replaced when dependencies are built.
