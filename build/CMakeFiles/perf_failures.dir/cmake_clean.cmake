file(REMOVE_RECURSE
  "CMakeFiles/perf_failures.dir/bench/perf_failures.cc.o"
  "CMakeFiles/perf_failures.dir/bench/perf_failures.cc.o.d"
  "bench/perf_failures"
  "bench/perf_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
