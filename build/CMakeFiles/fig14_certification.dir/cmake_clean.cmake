file(REMOVE_RECURSE
  "CMakeFiles/fig14_certification.dir/bench/fig14_certification.cc.o"
  "CMakeFiles/fig14_certification.dir/bench/fig14_certification.cc.o.d"
  "bench/fig14_certification"
  "bench/fig14_certification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_certification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
