# Empty compiler generated dependencies file for fig14_certification.
# This may be replaced when dependencies are built.
