# Empty compiler generated dependencies file for fig16_synthetic_view.
# This may be replaced when dependencies are built.
