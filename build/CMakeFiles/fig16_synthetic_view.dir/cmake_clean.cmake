file(REMOVE_RECURSE
  "CMakeFiles/fig16_synthetic_view.dir/bench/fig16_synthetic_view.cc.o"
  "CMakeFiles/fig16_synthetic_view.dir/bench/fig16_synthetic_view.cc.o.d"
  "bench/fig16_synthetic_view"
  "bench/fig16_synthetic_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_synthetic_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
