# Empty compiler generated dependencies file for fig03_passive.
# This may be replaced when dependencies are built.
