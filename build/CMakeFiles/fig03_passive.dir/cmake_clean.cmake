file(REMOVE_RECURSE
  "CMakeFiles/fig03_passive.dir/bench/fig03_passive.cc.o"
  "CMakeFiles/fig03_passive.dir/bench/fig03_passive.cc.o.d"
  "bench/fig03_passive"
  "bench/fig03_passive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_passive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
