
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_db_classification.cc" "CMakeFiles/fig06_db_classification.dir/bench/fig06_db_classification.cc.o" "gcc" "CMakeFiles/fig06_db_classification.dir/bench/fig06_db_classification.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/repli_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/check/CMakeFiles/repli_check.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/repli_core.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/repli_db.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/repli_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repli_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/repli_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repli_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
