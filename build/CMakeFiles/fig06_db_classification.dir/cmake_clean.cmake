file(REMOVE_RECURSE
  "CMakeFiles/fig06_db_classification.dir/bench/fig06_db_classification.cc.o"
  "CMakeFiles/fig06_db_classification.dir/bench/fig06_db_classification.cc.o.d"
  "bench/fig06_db_classification"
  "bench/fig06_db_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_db_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
