# Empty compiler generated dependencies file for fig06_db_classification.
# This may be replaced when dependencies are built.
