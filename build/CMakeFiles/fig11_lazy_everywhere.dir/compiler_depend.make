# Empty compiler generated dependencies file for fig11_lazy_everywhere.
# This may be replaced when dependencies are built.
