file(REMOVE_RECURSE
  "CMakeFiles/fig11_lazy_everywhere.dir/bench/fig11_lazy_everywhere.cc.o"
  "CMakeFiles/fig11_lazy_everywhere.dir/bench/fig11_lazy_everywhere.cc.o.d"
  "bench/fig11_lazy_everywhere"
  "bench/fig11_lazy_everywhere.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_lazy_everywhere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
