# Empty dependencies file for perf_workloads.
# This may be replaced when dependencies are built.
