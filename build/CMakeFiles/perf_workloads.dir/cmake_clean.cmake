file(REMOVE_RECURSE
  "CMakeFiles/perf_workloads.dir/bench/perf_workloads.cc.o"
  "CMakeFiles/perf_workloads.dir/bench/perf_workloads.cc.o.d"
  "bench/perf_workloads"
  "bench/perf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
