file(REMOVE_RECURSE
  "CMakeFiles/fig13_eager_locking_txn.dir/bench/fig13_eager_locking_txn.cc.o"
  "CMakeFiles/fig13_eager_locking_txn.dir/bench/fig13_eager_locking_txn.cc.o.d"
  "bench/fig13_eager_locking_txn"
  "bench/fig13_eager_locking_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_eager_locking_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
