# Empty dependencies file for fig13_eager_locking_txn.
# This may be replaced when dependencies are built.
