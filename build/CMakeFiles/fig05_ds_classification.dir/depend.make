# Empty dependencies file for fig05_ds_classification.
# This may be replaced when dependencies are built.
