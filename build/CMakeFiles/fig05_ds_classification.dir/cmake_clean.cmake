file(REMOVE_RECURSE
  "CMakeFiles/fig05_ds_classification.dir/bench/fig05_ds_classification.cc.o"
  "CMakeFiles/fig05_ds_classification.dir/bench/fig05_ds_classification.cc.o.d"
  "bench/fig05_ds_classification"
  "bench/fig05_ds_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ds_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
