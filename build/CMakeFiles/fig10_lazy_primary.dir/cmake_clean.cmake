file(REMOVE_RECURSE
  "CMakeFiles/fig10_lazy_primary.dir/bench/fig10_lazy_primary.cc.o"
  "CMakeFiles/fig10_lazy_primary.dir/bench/fig10_lazy_primary.cc.o.d"
  "bench/fig10_lazy_primary"
  "bench/fig10_lazy_primary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lazy_primary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
