# Empty compiler generated dependencies file for fig10_lazy_primary.
# This may be replaced when dependencies are built.
