# Empty compiler generated dependencies file for ablation_options.
# This may be replaced when dependencies are built.
