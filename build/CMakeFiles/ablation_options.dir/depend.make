# Empty dependencies file for ablation_options.
# This may be replaced when dependencies are built.
