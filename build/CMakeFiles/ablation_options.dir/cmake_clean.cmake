file(REMOVE_RECURSE
  "CMakeFiles/ablation_options.dir/bench/ablation_options.cc.o"
  "CMakeFiles/ablation_options.dir/bench/ablation_options.cc.o.d"
  "bench/ablation_options"
  "bench/ablation_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
