# Empty dependencies file for fig07_eager_primary.
# This may be replaced when dependencies are built.
