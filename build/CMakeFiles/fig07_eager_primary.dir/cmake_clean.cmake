file(REMOVE_RECURSE
  "CMakeFiles/fig07_eager_primary.dir/bench/fig07_eager_primary.cc.o"
  "CMakeFiles/fig07_eager_primary.dir/bench/fig07_eager_primary.cc.o.d"
  "bench/fig07_eager_primary"
  "bench/fig07_eager_primary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_eager_primary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
