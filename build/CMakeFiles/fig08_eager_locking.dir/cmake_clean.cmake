file(REMOVE_RECURSE
  "CMakeFiles/fig08_eager_locking.dir/bench/fig08_eager_locking.cc.o"
  "CMakeFiles/fig08_eager_locking.dir/bench/fig08_eager_locking.cc.o.d"
  "bench/fig08_eager_locking"
  "bench/fig08_eager_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_eager_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
