# Empty compiler generated dependencies file for fig08_eager_locking.
# This may be replaced when dependencies are built.
