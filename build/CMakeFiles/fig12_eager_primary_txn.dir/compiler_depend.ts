# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig12_eager_primary_txn.
