# Empty dependencies file for fig12_eager_primary_txn.
# This may be replaced when dependencies are built.
