file(REMOVE_RECURSE
  "CMakeFiles/fig12_eager_primary_txn.dir/bench/fig12_eager_primary_txn.cc.o"
  "CMakeFiles/fig12_eager_primary_txn.dir/bench/fig12_eager_primary_txn.cc.o.d"
  "bench/fig12_eager_primary_txn"
  "bench/fig12_eager_primary_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_eager_primary_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
