file(REMOVE_RECURSE
  "CMakeFiles/mobile_notes_lazy.dir/mobile_notes_lazy.cc.o"
  "CMakeFiles/mobile_notes_lazy.dir/mobile_notes_lazy.cc.o.d"
  "mobile_notes_lazy"
  "mobile_notes_lazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_notes_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
