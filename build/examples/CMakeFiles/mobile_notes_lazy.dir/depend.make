# Empty dependencies file for mobile_notes_lazy.
# This may be replaced when dependencies are built.
