file(REMOVE_RECURSE
  "CMakeFiles/hot_standby_failover.dir/hot_standby_failover.cc.o"
  "CMakeFiles/hot_standby_failover.dir/hot_standby_failover.cc.o.d"
  "hot_standby_failover"
  "hot_standby_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_standby_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
