# Empty dependencies file for hot_standby_failover.
# This may be replaced when dependencies are built.
