# Empty dependencies file for bank_certification.
# This may be replaced when dependencies are built.
