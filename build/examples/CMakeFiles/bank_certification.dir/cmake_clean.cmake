file(REMOVE_RECURSE
  "CMakeFiles/bank_certification.dir/bank_certification.cc.o"
  "CMakeFiles/bank_certification.dir/bank_certification.cc.o.d"
  "bank_certification"
  "bank_certification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_certification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
