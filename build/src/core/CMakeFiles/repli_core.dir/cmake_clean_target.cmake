file(REMOVE_RECURSE
  "librepli_core.a"
)
