
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active.cc" "src/core/CMakeFiles/repli_core.dir/active.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/active.cc.o.d"
  "/root/repo/src/core/certification.cc" "src/core/CMakeFiles/repli_core.dir/certification.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/certification.cc.o.d"
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/repli_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/client.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/repli_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/eager_abcast.cc" "src/core/CMakeFiles/repli_core.dir/eager_abcast.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/eager_abcast.cc.o.d"
  "/root/repo/src/core/eager_locking.cc" "src/core/CMakeFiles/repli_core.dir/eager_locking.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/eager_locking.cc.o.d"
  "/root/repo/src/core/eager_primary.cc" "src/core/CMakeFiles/repli_core.dir/eager_primary.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/eager_primary.cc.o.d"
  "/root/repo/src/core/lazy_everywhere.cc" "src/core/CMakeFiles/repli_core.dir/lazy_everywhere.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/lazy_everywhere.cc.o.d"
  "/root/repo/src/core/lazy_primary.cc" "src/core/CMakeFiles/repli_core.dir/lazy_primary.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/lazy_primary.cc.o.d"
  "/root/repo/src/core/passive.cc" "src/core/CMakeFiles/repli_core.dir/passive.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/passive.cc.o.d"
  "/root/repo/src/core/replica.cc" "src/core/CMakeFiles/repli_core.dir/replica.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/replica.cc.o.d"
  "/root/repo/src/core/semi_active.cc" "src/core/CMakeFiles/repli_core.dir/semi_active.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/semi_active.cc.o.d"
  "/root/repo/src/core/semi_passive.cc" "src/core/CMakeFiles/repli_core.dir/semi_passive.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/semi_passive.cc.o.d"
  "/root/repo/src/core/technique.cc" "src/core/CMakeFiles/repli_core.dir/technique.cc.o" "gcc" "src/core/CMakeFiles/repli_core.dir/technique.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/repli_db.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/repli_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repli_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/repli_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repli_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
