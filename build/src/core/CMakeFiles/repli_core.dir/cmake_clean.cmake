file(REMOVE_RECURSE
  "CMakeFiles/repli_core.dir/active.cc.o"
  "CMakeFiles/repli_core.dir/active.cc.o.d"
  "CMakeFiles/repli_core.dir/certification.cc.o"
  "CMakeFiles/repli_core.dir/certification.cc.o.d"
  "CMakeFiles/repli_core.dir/client.cc.o"
  "CMakeFiles/repli_core.dir/client.cc.o.d"
  "CMakeFiles/repli_core.dir/cluster.cc.o"
  "CMakeFiles/repli_core.dir/cluster.cc.o.d"
  "CMakeFiles/repli_core.dir/eager_abcast.cc.o"
  "CMakeFiles/repli_core.dir/eager_abcast.cc.o.d"
  "CMakeFiles/repli_core.dir/eager_locking.cc.o"
  "CMakeFiles/repli_core.dir/eager_locking.cc.o.d"
  "CMakeFiles/repli_core.dir/eager_primary.cc.o"
  "CMakeFiles/repli_core.dir/eager_primary.cc.o.d"
  "CMakeFiles/repli_core.dir/lazy_everywhere.cc.o"
  "CMakeFiles/repli_core.dir/lazy_everywhere.cc.o.d"
  "CMakeFiles/repli_core.dir/lazy_primary.cc.o"
  "CMakeFiles/repli_core.dir/lazy_primary.cc.o.d"
  "CMakeFiles/repli_core.dir/passive.cc.o"
  "CMakeFiles/repli_core.dir/passive.cc.o.d"
  "CMakeFiles/repli_core.dir/replica.cc.o"
  "CMakeFiles/repli_core.dir/replica.cc.o.d"
  "CMakeFiles/repli_core.dir/semi_active.cc.o"
  "CMakeFiles/repli_core.dir/semi_active.cc.o.d"
  "CMakeFiles/repli_core.dir/semi_passive.cc.o"
  "CMakeFiles/repli_core.dir/semi_passive.cc.o.d"
  "CMakeFiles/repli_core.dir/technique.cc.o"
  "CMakeFiles/repli_core.dir/technique.cc.o.d"
  "librepli_core.a"
  "librepli_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
