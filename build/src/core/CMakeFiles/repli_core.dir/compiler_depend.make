# Empty compiler generated dependencies file for repli_core.
# This may be replaced when dependencies are built.
