
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/exec.cc" "src/db/CMakeFiles/repli_db.dir/exec.cc.o" "gcc" "src/db/CMakeFiles/repli_db.dir/exec.cc.o.d"
  "/root/repo/src/db/lock.cc" "src/db/CMakeFiles/repli_db.dir/lock.cc.o" "gcc" "src/db/CMakeFiles/repli_db.dir/lock.cc.o.d"
  "/root/repo/src/db/storage.cc" "src/db/CMakeFiles/repli_db.dir/storage.cc.o" "gcc" "src/db/CMakeFiles/repli_db.dir/storage.cc.o.d"
  "/root/repo/src/db/tpc.cc" "src/db/CMakeFiles/repli_db.dir/tpc.cc.o" "gcc" "src/db/CMakeFiles/repli_db.dir/tpc.cc.o.d"
  "/root/repo/src/db/wal.cc" "src/db/CMakeFiles/repli_db.dir/wal.cc.o" "gcc" "src/db/CMakeFiles/repli_db.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gcs/CMakeFiles/repli_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repli_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/repli_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repli_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
