file(REMOVE_RECURSE
  "librepli_db.a"
)
