file(REMOVE_RECURSE
  "CMakeFiles/repli_db.dir/exec.cc.o"
  "CMakeFiles/repli_db.dir/exec.cc.o.d"
  "CMakeFiles/repli_db.dir/lock.cc.o"
  "CMakeFiles/repli_db.dir/lock.cc.o.d"
  "CMakeFiles/repli_db.dir/storage.cc.o"
  "CMakeFiles/repli_db.dir/storage.cc.o.d"
  "CMakeFiles/repli_db.dir/tpc.cc.o"
  "CMakeFiles/repli_db.dir/tpc.cc.o.d"
  "CMakeFiles/repli_db.dir/wal.cc.o"
  "CMakeFiles/repli_db.dir/wal.cc.o.d"
  "librepli_db.a"
  "librepli_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
