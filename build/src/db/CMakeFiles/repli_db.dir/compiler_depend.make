# Empty compiler generated dependencies file for repli_db.
# This may be replaced when dependencies are built.
