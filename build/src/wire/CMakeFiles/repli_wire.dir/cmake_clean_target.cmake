file(REMOVE_RECURSE
  "librepli_wire.a"
)
