# Empty dependencies file for repli_wire.
# This may be replaced when dependencies are built.
