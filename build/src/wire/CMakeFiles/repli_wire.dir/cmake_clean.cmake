file(REMOVE_RECURSE
  "CMakeFiles/repli_wire.dir/codec.cc.o"
  "CMakeFiles/repli_wire.dir/codec.cc.o.d"
  "CMakeFiles/repli_wire.dir/message.cc.o"
  "CMakeFiles/repli_wire.dir/message.cc.o.d"
  "librepli_wire.a"
  "librepli_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
