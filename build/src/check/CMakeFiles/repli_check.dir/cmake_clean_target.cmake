file(REMOVE_RECURSE
  "librepli_check.a"
)
