file(REMOVE_RECURSE
  "CMakeFiles/repli_check.dir/linearizability.cc.o"
  "CMakeFiles/repli_check.dir/linearizability.cc.o.d"
  "CMakeFiles/repli_check.dir/sequential.cc.o"
  "CMakeFiles/repli_check.dir/sequential.cc.o.d"
  "CMakeFiles/repli_check.dir/serializability.cc.o"
  "CMakeFiles/repli_check.dir/serializability.cc.o.d"
  "librepli_check.a"
  "librepli_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
