# Empty compiler generated dependencies file for repli_check.
# This may be replaced when dependencies are built.
