# Empty dependencies file for repli_gcs.
# This may be replaced when dependencies are built.
