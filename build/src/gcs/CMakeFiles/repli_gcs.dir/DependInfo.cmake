
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gcs/abcast_consensus.cc" "src/gcs/CMakeFiles/repli_gcs.dir/abcast_consensus.cc.o" "gcc" "src/gcs/CMakeFiles/repli_gcs.dir/abcast_consensus.cc.o.d"
  "/root/repo/src/gcs/abcast_sequencer.cc" "src/gcs/CMakeFiles/repli_gcs.dir/abcast_sequencer.cc.o" "gcc" "src/gcs/CMakeFiles/repli_gcs.dir/abcast_sequencer.cc.o.d"
  "/root/repo/src/gcs/consensus.cc" "src/gcs/CMakeFiles/repli_gcs.dir/consensus.cc.o" "gcc" "src/gcs/CMakeFiles/repli_gcs.dir/consensus.cc.o.d"
  "/root/repo/src/gcs/fd.cc" "src/gcs/CMakeFiles/repli_gcs.dir/fd.cc.o" "gcc" "src/gcs/CMakeFiles/repli_gcs.dir/fd.cc.o.d"
  "/root/repo/src/gcs/fifo.cc" "src/gcs/CMakeFiles/repli_gcs.dir/fifo.cc.o" "gcc" "src/gcs/CMakeFiles/repli_gcs.dir/fifo.cc.o.d"
  "/root/repo/src/gcs/flood.cc" "src/gcs/CMakeFiles/repli_gcs.dir/flood.cc.o" "gcc" "src/gcs/CMakeFiles/repli_gcs.dir/flood.cc.o.d"
  "/root/repo/src/gcs/link.cc" "src/gcs/CMakeFiles/repli_gcs.dir/link.cc.o" "gcc" "src/gcs/CMakeFiles/repli_gcs.dir/link.cc.o.d"
  "/root/repo/src/gcs/view.cc" "src/gcs/CMakeFiles/repli_gcs.dir/view.cc.o" "gcc" "src/gcs/CMakeFiles/repli_gcs.dir/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/repli_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/repli_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repli_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
