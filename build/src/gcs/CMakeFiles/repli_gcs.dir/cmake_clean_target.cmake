file(REMOVE_RECURSE
  "librepli_gcs.a"
)
