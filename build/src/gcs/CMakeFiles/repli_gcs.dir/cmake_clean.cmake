file(REMOVE_RECURSE
  "CMakeFiles/repli_gcs.dir/abcast_consensus.cc.o"
  "CMakeFiles/repli_gcs.dir/abcast_consensus.cc.o.d"
  "CMakeFiles/repli_gcs.dir/abcast_sequencer.cc.o"
  "CMakeFiles/repli_gcs.dir/abcast_sequencer.cc.o.d"
  "CMakeFiles/repli_gcs.dir/consensus.cc.o"
  "CMakeFiles/repli_gcs.dir/consensus.cc.o.d"
  "CMakeFiles/repli_gcs.dir/fd.cc.o"
  "CMakeFiles/repli_gcs.dir/fd.cc.o.d"
  "CMakeFiles/repli_gcs.dir/fifo.cc.o"
  "CMakeFiles/repli_gcs.dir/fifo.cc.o.d"
  "CMakeFiles/repli_gcs.dir/flood.cc.o"
  "CMakeFiles/repli_gcs.dir/flood.cc.o.d"
  "CMakeFiles/repli_gcs.dir/link.cc.o"
  "CMakeFiles/repli_gcs.dir/link.cc.o.d"
  "CMakeFiles/repli_gcs.dir/view.cc.o"
  "CMakeFiles/repli_gcs.dir/view.cc.o.d"
  "librepli_gcs.a"
  "librepli_gcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_gcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
