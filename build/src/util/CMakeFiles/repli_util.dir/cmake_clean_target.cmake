file(REMOVE_RECURSE
  "librepli_util.a"
)
