file(REMOVE_RECURSE
  "CMakeFiles/repli_util.dir/assert.cc.o"
  "CMakeFiles/repli_util.dir/assert.cc.o.d"
  "CMakeFiles/repli_util.dir/log.cc.o"
  "CMakeFiles/repli_util.dir/log.cc.o.d"
  "CMakeFiles/repli_util.dir/metrics.cc.o"
  "CMakeFiles/repli_util.dir/metrics.cc.o.d"
  "CMakeFiles/repli_util.dir/rng.cc.o"
  "CMakeFiles/repli_util.dir/rng.cc.o.d"
  "librepli_util.a"
  "librepli_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
