# Empty compiler generated dependencies file for repli_util.
# This may be replaced when dependencies are built.
