# Empty compiler generated dependencies file for repli_sim.
# This may be replaced when dependencies are built.
