file(REMOVE_RECURSE
  "CMakeFiles/repli_sim.dir/network.cc.o"
  "CMakeFiles/repli_sim.dir/network.cc.o.d"
  "CMakeFiles/repli_sim.dir/process.cc.o"
  "CMakeFiles/repli_sim.dir/process.cc.o.d"
  "CMakeFiles/repli_sim.dir/simulator.cc.o"
  "CMakeFiles/repli_sim.dir/simulator.cc.o.d"
  "CMakeFiles/repli_sim.dir/trace.cc.o"
  "CMakeFiles/repli_sim.dir/trace.cc.o.d"
  "librepli_sim.a"
  "librepli_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
