file(REMOVE_RECURSE
  "librepli_sim.a"
)
