
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gcs/abcast_test.cc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/abcast_test.cc.o" "gcc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/abcast_test.cc.o.d"
  "/root/repo/tests/gcs/component_test.cc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/component_test.cc.o" "gcc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/component_test.cc.o.d"
  "/root/repo/tests/gcs/consensus_test.cc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/consensus_test.cc.o" "gcc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/consensus_test.cc.o.d"
  "/root/repo/tests/gcs/fd_test.cc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/fd_test.cc.o" "gcc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/fd_test.cc.o.d"
  "/root/repo/tests/gcs/fifo_test.cc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/fifo_test.cc.o" "gcc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/fifo_test.cc.o.d"
  "/root/repo/tests/gcs/flood_test.cc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/flood_test.cc.o" "gcc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/flood_test.cc.o.d"
  "/root/repo/tests/gcs/link_test.cc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/link_test.cc.o" "gcc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/link_test.cc.o.d"
  "/root/repo/tests/gcs/view_test.cc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/view_test.cc.o" "gcc" "tests/gcs/CMakeFiles/repli_gcs_tests.dir/view_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gcs/CMakeFiles/repli_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repli_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/repli_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repli_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
