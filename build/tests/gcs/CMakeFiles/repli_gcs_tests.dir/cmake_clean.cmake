file(REMOVE_RECURSE
  "CMakeFiles/repli_gcs_tests.dir/abcast_test.cc.o"
  "CMakeFiles/repli_gcs_tests.dir/abcast_test.cc.o.d"
  "CMakeFiles/repli_gcs_tests.dir/component_test.cc.o"
  "CMakeFiles/repli_gcs_tests.dir/component_test.cc.o.d"
  "CMakeFiles/repli_gcs_tests.dir/consensus_test.cc.o"
  "CMakeFiles/repli_gcs_tests.dir/consensus_test.cc.o.d"
  "CMakeFiles/repli_gcs_tests.dir/fd_test.cc.o"
  "CMakeFiles/repli_gcs_tests.dir/fd_test.cc.o.d"
  "CMakeFiles/repli_gcs_tests.dir/fifo_test.cc.o"
  "CMakeFiles/repli_gcs_tests.dir/fifo_test.cc.o.d"
  "CMakeFiles/repli_gcs_tests.dir/flood_test.cc.o"
  "CMakeFiles/repli_gcs_tests.dir/flood_test.cc.o.d"
  "CMakeFiles/repli_gcs_tests.dir/link_test.cc.o"
  "CMakeFiles/repli_gcs_tests.dir/link_test.cc.o.d"
  "CMakeFiles/repli_gcs_tests.dir/view_test.cc.o"
  "CMakeFiles/repli_gcs_tests.dir/view_test.cc.o.d"
  "repli_gcs_tests"
  "repli_gcs_tests.pdb"
  "repli_gcs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_gcs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
