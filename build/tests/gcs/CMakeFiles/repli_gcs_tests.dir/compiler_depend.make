# Empty compiler generated dependencies file for repli_gcs_tests.
# This may be replaced when dependencies are built.
