# Empty compiler generated dependencies file for repli_util_tests.
# This may be replaced when dependencies are built.
