file(REMOVE_RECURSE
  "CMakeFiles/repli_util_tests.dir/assert_test.cc.o"
  "CMakeFiles/repli_util_tests.dir/assert_test.cc.o.d"
  "CMakeFiles/repli_util_tests.dir/metrics_test.cc.o"
  "CMakeFiles/repli_util_tests.dir/metrics_test.cc.o.d"
  "CMakeFiles/repli_util_tests.dir/rng_test.cc.o"
  "CMakeFiles/repli_util_tests.dir/rng_test.cc.o.d"
  "repli_util_tests"
  "repli_util_tests.pdb"
  "repli_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
