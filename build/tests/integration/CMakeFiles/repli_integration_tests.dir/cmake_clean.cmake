file(REMOVE_RECURSE
  "CMakeFiles/repli_integration_tests.dir/determinism_test.cc.o"
  "CMakeFiles/repli_integration_tests.dir/determinism_test.cc.o.d"
  "CMakeFiles/repli_integration_tests.dir/economics_test.cc.o"
  "CMakeFiles/repli_integration_tests.dir/economics_test.cc.o.d"
  "CMakeFiles/repli_integration_tests.dir/loss_test.cc.o"
  "CMakeFiles/repli_integration_tests.dir/loss_test.cc.o.d"
  "CMakeFiles/repli_integration_tests.dir/partition_test.cc.o"
  "CMakeFiles/repli_integration_tests.dir/partition_test.cc.o.d"
  "repli_integration_tests"
  "repli_integration_tests.pdb"
  "repli_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
