# Empty dependencies file for repli_integration_tests.
# This may be replaced when dependencies are built.
