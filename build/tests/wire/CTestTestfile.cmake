# CMake generated Testfile for 
# Source directory: /root/repo/tests/wire
# Build directory: /root/repo/build/tests/wire
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/wire/repli_wire_tests[1]_include.cmake")
