# Empty dependencies file for repli_wire_tests.
# This may be replaced when dependencies are built.
