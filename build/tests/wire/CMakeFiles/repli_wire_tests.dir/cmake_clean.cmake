file(REMOVE_RECURSE
  "CMakeFiles/repli_wire_tests.dir/codec_test.cc.o"
  "CMakeFiles/repli_wire_tests.dir/codec_test.cc.o.d"
  "CMakeFiles/repli_wire_tests.dir/message_test.cc.o"
  "CMakeFiles/repli_wire_tests.dir/message_test.cc.o.d"
  "repli_wire_tests"
  "repli_wire_tests.pdb"
  "repli_wire_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_wire_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
