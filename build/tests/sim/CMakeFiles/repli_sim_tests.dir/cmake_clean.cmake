file(REMOVE_RECURSE
  "CMakeFiles/repli_sim_tests.dir/network_test.cc.o"
  "CMakeFiles/repli_sim_tests.dir/network_test.cc.o.d"
  "CMakeFiles/repli_sim_tests.dir/simulator_test.cc.o"
  "CMakeFiles/repli_sim_tests.dir/simulator_test.cc.o.d"
  "CMakeFiles/repli_sim_tests.dir/trace_test.cc.o"
  "CMakeFiles/repli_sim_tests.dir/trace_test.cc.o.d"
  "repli_sim_tests"
  "repli_sim_tests.pdb"
  "repli_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
