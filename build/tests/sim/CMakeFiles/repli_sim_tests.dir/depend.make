# Empty dependencies file for repli_sim_tests.
# This may be replaced when dependencies are built.
