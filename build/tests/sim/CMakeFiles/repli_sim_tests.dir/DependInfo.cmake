
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/network_test.cc" "tests/sim/CMakeFiles/repli_sim_tests.dir/network_test.cc.o" "gcc" "tests/sim/CMakeFiles/repli_sim_tests.dir/network_test.cc.o.d"
  "/root/repo/tests/sim/simulator_test.cc" "tests/sim/CMakeFiles/repli_sim_tests.dir/simulator_test.cc.o" "gcc" "tests/sim/CMakeFiles/repli_sim_tests.dir/simulator_test.cc.o.d"
  "/root/repo/tests/sim/trace_test.cc" "tests/sim/CMakeFiles/repli_sim_tests.dir/trace_test.cc.o" "gcc" "tests/sim/CMakeFiles/repli_sim_tests.dir/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/repli_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/repli_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repli_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
