# Empty compiler generated dependencies file for repli_db_tests.
# This may be replaced when dependencies are built.
