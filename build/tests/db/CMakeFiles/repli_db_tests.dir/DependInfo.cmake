
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/db/exec_test.cc" "tests/db/CMakeFiles/repli_db_tests.dir/exec_test.cc.o" "gcc" "tests/db/CMakeFiles/repli_db_tests.dir/exec_test.cc.o.d"
  "/root/repo/tests/db/lock_test.cc" "tests/db/CMakeFiles/repli_db_tests.dir/lock_test.cc.o" "gcc" "tests/db/CMakeFiles/repli_db_tests.dir/lock_test.cc.o.d"
  "/root/repo/tests/db/storage_test.cc" "tests/db/CMakeFiles/repli_db_tests.dir/storage_test.cc.o" "gcc" "tests/db/CMakeFiles/repli_db_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/db/tpc_test.cc" "tests/db/CMakeFiles/repli_db_tests.dir/tpc_test.cc.o" "gcc" "tests/db/CMakeFiles/repli_db_tests.dir/tpc_test.cc.o.d"
  "/root/repo/tests/db/wal_test.cc" "tests/db/CMakeFiles/repli_db_tests.dir/wal_test.cc.o" "gcc" "tests/db/CMakeFiles/repli_db_tests.dir/wal_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/repli_db.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/repli_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repli_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/repli_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repli_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
