file(REMOVE_RECURSE
  "CMakeFiles/repli_db_tests.dir/exec_test.cc.o"
  "CMakeFiles/repli_db_tests.dir/exec_test.cc.o.d"
  "CMakeFiles/repli_db_tests.dir/lock_test.cc.o"
  "CMakeFiles/repli_db_tests.dir/lock_test.cc.o.d"
  "CMakeFiles/repli_db_tests.dir/storage_test.cc.o"
  "CMakeFiles/repli_db_tests.dir/storage_test.cc.o.d"
  "CMakeFiles/repli_db_tests.dir/tpc_test.cc.o"
  "CMakeFiles/repli_db_tests.dir/tpc_test.cc.o.d"
  "CMakeFiles/repli_db_tests.dir/wal_test.cc.o"
  "CMakeFiles/repli_db_tests.dir/wal_test.cc.o.d"
  "repli_db_tests"
  "repli_db_tests.pdb"
  "repli_db_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_db_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
