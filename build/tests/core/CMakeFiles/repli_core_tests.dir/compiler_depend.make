# Empty compiler generated dependencies file for repli_core_tests.
# This may be replaced when dependencies are built.
