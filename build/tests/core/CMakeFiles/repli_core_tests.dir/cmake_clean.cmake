file(REMOVE_RECURSE
  "CMakeFiles/repli_core_tests.dir/cluster_test.cc.o"
  "CMakeFiles/repli_core_tests.dir/cluster_test.cc.o.d"
  "CMakeFiles/repli_core_tests.dir/consistency_test.cc.o"
  "CMakeFiles/repli_core_tests.dir/consistency_test.cc.o.d"
  "CMakeFiles/repli_core_tests.dir/determinism_test.cc.o"
  "CMakeFiles/repli_core_tests.dir/determinism_test.cc.o.d"
  "CMakeFiles/repli_core_tests.dir/failover_test.cc.o"
  "CMakeFiles/repli_core_tests.dir/failover_test.cc.o.d"
  "CMakeFiles/repli_core_tests.dir/options_test.cc.o"
  "CMakeFiles/repli_core_tests.dir/options_test.cc.o.d"
  "CMakeFiles/repli_core_tests.dir/phases_test.cc.o"
  "CMakeFiles/repli_core_tests.dir/phases_test.cc.o.d"
  "CMakeFiles/repli_core_tests.dir/technique_table_test.cc.o"
  "CMakeFiles/repli_core_tests.dir/technique_table_test.cc.o.d"
  "CMakeFiles/repli_core_tests.dir/txn_test.cc.o"
  "CMakeFiles/repli_core_tests.dir/txn_test.cc.o.d"
  "repli_core_tests"
  "repli_core_tests.pdb"
  "repli_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
