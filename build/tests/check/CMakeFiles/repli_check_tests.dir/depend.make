# Empty dependencies file for repli_check_tests.
# This may be replaced when dependencies are built.
