file(REMOVE_RECURSE
  "CMakeFiles/repli_check_tests.dir/linearizability_test.cc.o"
  "CMakeFiles/repli_check_tests.dir/linearizability_test.cc.o.d"
  "CMakeFiles/repli_check_tests.dir/sequential_test.cc.o"
  "CMakeFiles/repli_check_tests.dir/sequential_test.cc.o.d"
  "CMakeFiles/repli_check_tests.dir/serializability_test.cc.o"
  "CMakeFiles/repli_check_tests.dir/serializability_test.cc.o.d"
  "repli_check_tests"
  "repli_check_tests.pdb"
  "repli_check_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repli_check_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
